//! Sharded, blocking, selectively-receivable mailboxes.
//!
//! A [`Mailbox`] is the real-data transport primitive of the simulated
//! fabric: senders push items, receivers block until an item matching a
//! predicate arrives. Unlike a plain channel, `recv_match` lets a protocol
//! stack wait for a *specific* frame (a CTS from node 3, a credit return on
//! channel 7) while unrelated frames stay queued — which is exactly how
//! NIC receive queues are demultiplexed by the real stacks Madeleine drives.
//!
//! ## Sharded hot path
//!
//! The mailbox used to be one condvar-guarded `VecDeque`: every producer
//! and every consumer — even ones touching *different* peers — serialized
//! on a single lock. It is now a demux over [`SHARD_COUNT`] shards keyed by
//! the item's [`Shardable::shard_key`] (for a [`Frame`]: `(src, kind)`).
//! Each shard is a lock-free bounded ring ([`crossbeam`]'s `ArrayQueue`)
//! with a small mutex-guarded staging deque behind it:
//!
//! * **push** stamps the item with a global monotonic sequence number and
//!   does a lock-free ring push (`shard_hits` counts these). Only when the
//!   ring is full does the producer take the shard's staging lock and spill
//!   the ring into the deque (`ring_overflows` counts those).
//! * **keyed receives** (`recv_keyed` and friends — the targeted fast
//!   path: "the ack from peer 3") open exactly one shard: drain its ring
//!   into the staging deque, scan that deque only.
//! * **predicate receives** (`recv_match` — "any frame matching this")
//!   open every non-empty shard in index order and pick the queued match
//!   with the smallest stamp, preserving the FIFO-among-matches contract
//!   of the unsharded mailbox (`full_scans` counts these).
//!
//! Blocking uses an eventcount (a version counter plus a waiter count over
//! one `std::sync` condvar): producers on the fast path never touch the
//! condvar mutex unless a receiver is actually asleep.
//!
//! This module is one of the lock-free hot-path modules linted by
//! `scripts/verify.sh`: no `parking_lot` locks may appear here — the cold
//! blocking fallback uses `std::sync` primitives only.

use crossbeam::queue::ArrayQueue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::frame::{Frame, NodeId};

/// Routes an item to its demux shard. Items whose keys are equal always
/// land in the same shard, which is what makes the keyed receives
/// single-shard operations.
pub trait Shardable {
    fn shard_key(&self) -> u64;
}

/// Number of demux shards per mailbox (power of two).
const SHARD_COUNT: usize = 16;
/// Capacity of each shard's lock-free ring; overflow spills to the shard's
/// staging deque, so this bounds memory of the fast path, not the mailbox.
const RING_CAP: usize = 64;
/// Failed receive attempts before a blocking receive parks on the
/// condvar (see [`Mailbox::block_on`]).
const SPIN_LIMIT: u32 = 64;

/// Fibonacci multiplicative hash of a shard key → shard index.
fn shard_index(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (SHARD_COUNT - 1)
}

/// A queued item plus the metadata the demux needs: its global arrival
/// stamp (for FIFO-among-matches across shards) and its shard key (so
/// keyed scans can skip hash-colliding strangers without re-deriving it).
struct Stamped<T> {
    seq: u64,
    key: u64,
    item: T,
}

struct Shard<T> {
    /// Lock-free producer fast path.
    ring: ArrayQueue<Stamped<T>>,
    /// Consumer-side staging: ring items are drained here (under the
    /// shard lock) so predicate scans can skip non-matching items without
    /// losing them. Also the overflow area when the ring fills.
    staged: Mutex<VecDeque<Stamped<T>>>,
    /// Items in ring + staged (advisory; lets full scans skip idle shards).
    count: AtomicUsize,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Shard {
            ring: ArrayQueue::new(RING_CAP),
            staged: Mutex::new(VecDeque::new()),
            count: AtomicUsize::new(0),
        }
    }
}

struct MailboxInner<T> {
    shards: Vec<Shard<T>>,
    /// Global arrival stamp: the cross-shard FIFO order.
    stamp: AtomicU64,
    /// Eventcount version: bumped after every push; sleepers re-scan when
    /// it moves.
    version: AtomicU64,
    /// How many receivers are (about to be) asleep; producers skip the
    /// condvar entirely while this is zero.
    waiters: AtomicUsize,
    sleep: Mutex<()>,
    cond: Condvar,
    /// Operations resolved against a single shard: lock-free ring pushes
    /// plus keyed receives/peeks.
    shard_hits: AtomicU64,
    /// Pushes that found their shard's ring full and spilled to staging.
    ring_overflows: AtomicU64,
    /// Predicate operations that had to open every non-empty shard.
    full_scans: AtomicU64,
}

/// A multi-producer, multi-consumer mailbox with predicate receive.
pub struct Mailbox<T> {
    inner: Arc<MailboxInner<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Recover the guard even if a predicate panicked while scanning: the
/// queue itself is never left mid-mutation, so poisoning is benign here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Insert into a staging deque preserving ascending-seq order. Ring
/// drain order is already *nearly* sorted — only a producer whose tail
/// CAS lost can publish a slot ahead of a smaller stamp — so the walk
/// from the back is O(1) amortized. Keeping staging sorted is what lets
/// every scan below stop at its *first* match instead of sweeping the
/// whole deque for the smallest stamp (a full sweep per receive turns a
/// backlog into quadratic work).
fn insert_by_seq<T>(staged: &mut VecDeque<Stamped<T>>, s: Stamped<T>) {
    let mut pos = staged.len();
    while pos > 0 && staged[pos - 1].seq > s.seq {
        pos -= 1;
    }
    staged.insert(pos, s);
}

impl<T: Shardable> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox {
            inner: Arc::new(MailboxInner {
                shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
                stamp: AtomicU64::new(0),
                version: AtomicU64::new(0),
                waiters: AtomicUsize::new(0),
                sleep: Mutex::new(()),
                cond: Condvar::new(),
                shard_hits: AtomicU64::new(0),
                ring_overflows: AtomicU64::new(0),
                full_scans: AtomicU64::new(0),
            }),
        }
    }

    /// Deposit an item and wake any waiting receivers (they re-check their
    /// predicates; only matching ones consume). Lock-free unless the
    /// shard's ring is full or a receiver is asleep.
    pub fn push(&self, item: T) {
        let key = item.shard_key();
        let idx = shard_index(key);
        let shard = &self.inner.shards[idx];
        let seq = self.inner.stamp.fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Release);
        match shard.ring.push(Stamped { seq, key, item }) {
            Ok(()) => {
                self.inner.shard_hits.fetch_add(1, Ordering::Relaxed);
            }
            Err(overflow) => {
                self.inner.ring_overflows.fetch_add(1, Ordering::Relaxed);
                let mut staged = lock_unpoisoned(&shard.staged);
                while let Some(s) = shard.ring.pop() {
                    insert_by_seq(&mut staged, s);
                }
                insert_by_seq(&mut staged, overflow);
            }
        }
        // Publish, then wake: sleepers re-scan when the version moves, so
        // a producer only pays the condvar when someone is actually asleep.
        self.inner.version.fetch_add(1, Ordering::SeqCst);
        if self.inner.waiters.load(Ordering::SeqCst) > 0 {
            let _g = lock_unpoisoned(&self.inner.sleep);
            // notify_all: receivers wait on *different* predicates, so a
            // notify_one could wake the wrong one and lose the wakeup.
            self.inner.cond.notify_all();
        }
    }

    /// Lock one shard's staging deque and fold its ring into it (in seq
    /// order), so the caller sees every queued item of that shard in one
    /// scannable, oldest-first place.
    fn open_shard(&self, idx: usize) -> MutexGuard<'_, VecDeque<Stamped<T>>> {
        let shard = &self.inner.shards[idx];
        let mut staged = lock_unpoisoned(&shard.staged);
        while let Some(s) = shard.ring.pop() {
            insert_by_seq(&mut staged, s);
        }
        staged
    }

    /// Open every shard that plausibly holds items, in index order (the
    /// fixed order makes the multi-lock acquisition deadlock-free).
    #[allow(clippy::type_complexity)]
    fn open_nonempty(&self) -> Vec<(usize, MutexGuard<'_, VecDeque<Stamped<T>>>)> {
        self.inner.full_scans.fetch_add(1, Ordering::Relaxed);
        (0..SHARD_COUNT)
            .filter(|&i| self.inner.shards[i].count.load(Ordering::Acquire) != 0)
            .map(|i| (i, self.open_shard(i)))
            .collect()
    }

    /// Position of the oldest (smallest-stamp) match across the opened
    /// shards: `(guards index, position in that deque)`. Each deque is
    /// seq-sorted, so only the *first* match per shard competes.
    fn best_match(
        guards: &[(usize, MutexGuard<'_, VecDeque<Stamped<T>>>)],
        pred: &mut impl FnMut(&T) -> bool,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for (gi, (_, g)) in guards.iter().enumerate() {
            if let Some((pos, s)) = g.iter().enumerate().find(|(_, s)| pred(&s.item)) {
                if best.is_none_or(|(bseq, _, _)| s.seq < bseq) {
                    best = Some((s.seq, gi, pos));
                }
            }
        }
        best.map(|(_, gi, pos)| (gi, pos))
    }

    fn take_at(
        &self,
        guards: &mut [(usize, MutexGuard<'_, VecDeque<Stamped<T>>>)],
        gi: usize,
        pos: usize,
    ) -> T {
        let (si, g) = &mut guards[gi];
        let s = g.remove(pos).expect("position just found");
        self.inner.shards[*si].count.fetch_sub(1, Ordering::Release);
        s.item
    }

    /// Park until the mailbox's version moves past `attempt`'s snapshot.
    /// The eventcount handshake with [`push`](Self::push) guarantees no
    /// lost wakeups: a push that lands after `attempt` misses bumps the
    /// version before we commit to sleeping.
    ///
    /// A bounded spin precedes every park: under a message storm the next
    /// item lands within a few re-checks, and parking would put the
    /// consumer's wakeup (a futex round-trip *plus* a notify-all of every
    /// sleeper, paid by the producer) on the per-item path. The spin keeps
    /// the condvar machinery out of the hot path entirely; a genuinely
    /// idle receiver still parks after `SPIN_LIMIT` failed attempts.
    fn block_on<R>(&self, mut attempt: impl FnMut() -> Option<R>) -> R {
        let mut spins = 0u32;
        loop {
            let v = self.inner.version.load(Ordering::SeqCst);
            if let Some(r) = attempt() {
                return r;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                if spins % 8 == 0 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            self.inner.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = lock_unpoisoned(&self.inner.sleep);
            while self.inner.version.load(Ordering::SeqCst) == v {
                g = self.inner.cond.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            drop(g);
            self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
            spins = 0;
        }
    }

    /// [`block_on`](Self::block_on) with a real-time deadline; makes one
    /// final attempt at expiry (an item may have raced in).
    fn block_on_timeout<R>(
        &self,
        timeout: Duration,
        mut attempt: impl FnMut() -> Option<R>,
    ) -> Option<R> {
        let deadline = Instant::now() + timeout;
        loop {
            let v = self.inner.version.load(Ordering::SeqCst);
            if let Some(r) = attempt() {
                return Some(r);
            }
            if Instant::now() >= deadline {
                return attempt();
            }
            self.inner.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = lock_unpoisoned(&self.inner.sleep);
            let mut expired = false;
            while self.inner.version.load(Ordering::SeqCst) == v {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    expired = true;
                    break;
                }
                g = self
                    .inner
                    .cond
                    .wait_timeout(g, left)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            drop(g);
            self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
            if expired {
                return attempt();
            }
        }
    }

    /// Block until an item satisfying `pred` is present; remove and return
    /// the *oldest* matching item (FIFO among matches).
    pub fn recv_match(&self, mut pred: impl FnMut(&T) -> bool) -> T {
        self.block_on(|| self.try_recv_match(&mut pred))
    }

    /// [`recv_match`](Self::recv_match) with a *real-time* deadline:
    /// returns `None` if no matching item arrived within `timeout`. The
    /// fault-aware stacks use this to bound their ack waits — on the
    /// no-fault path nothing ever times out, so the plain blocking
    /// receives stay untouched.
    pub fn recv_match_timeout(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        timeout: Duration,
    ) -> Option<T> {
        self.block_on_timeout(timeout, || self.try_recv_match(&mut pred))
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match).
    pub fn try_recv_match(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut guards = self.open_nonempty();
        let (gi, pos) = Self::best_match(&guards, &mut pred)?;
        Some(self.take_at(&mut guards, gi, pos))
    }

    /// Block until any item is present; FIFO.
    pub fn recv(&self) -> T {
        self.recv_match(|_| true)
    }

    /// Targeted receive: the oldest item whose [`Shardable::shard_key`]
    /// equals `key` and which satisfies `pred`. Opens exactly one shard —
    /// this is the hot-path variant the protocol stacks use when they know
    /// who they are listening to ("the ack from peer 3").
    pub fn recv_keyed(&self, key: u64, mut pred: impl FnMut(&T) -> bool) -> T {
        self.block_on(|| self.try_recv_keyed(key, &mut pred))
    }

    /// [`recv_keyed`](Self::recv_keyed) with a real-time deadline.
    pub fn recv_keyed_timeout(
        &self,
        key: u64,
        mut pred: impl FnMut(&T) -> bool,
        timeout: Duration,
    ) -> Option<T> {
        self.block_on_timeout(timeout, || self.try_recv_keyed(key, &mut pred))
    }

    /// Non-blocking variant of [`recv_keyed`](Self::recv_keyed). The
    /// staging deque is seq-sorted, so the first key-and-predicate match
    /// is the oldest one — the scan stops there.
    pub fn try_recv_keyed(&self, key: u64, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        self.inner.shard_hits.fetch_add(1, Ordering::Relaxed);
        let idx = shard_index(key);
        let mut g = self.open_shard(idx);
        let pos = g.iter().position(|s| s.key == key && pred(&s.item))?;
        let s = g.remove(pos).expect("position just found");
        self.inner.shards[idx].count.fetch_sub(1, Ordering::Release);
        Some(s.item)
    }

    /// Non-consuming keyed query: `proj` of the oldest key-and-predicate
    /// match, if any. Single-shard, no clone.
    pub fn try_peek_keyed_map<U>(
        &self,
        key: u64,
        mut pred: impl FnMut(&T) -> bool,
        proj: impl FnOnce(&T) -> U,
    ) -> Option<U> {
        self.inner.shard_hits.fetch_add(1, Ordering::Relaxed);
        let g = self.open_shard(shard_index(key));
        g.iter()
            .find(|s| s.key == key && pred(&s.item))
            .map(|s| proj(&s.item))
    }

    /// Block until an item satisfying `pred` is present and return a clone
    /// of the oldest match **without consuming it** (used by protocol
    /// stacks to announce incoming traffic before committing to receive).
    pub fn peek_wait(&self, mut pred: impl FnMut(&T) -> bool) -> T
    where
        T: Clone,
    {
        self.block_on(|| self.try_peek(&mut pred))
    }

    /// Non-blocking peek: clone of the oldest matching item, if any.
    pub fn try_peek(&self, pred: impl FnMut(&T) -> bool) -> Option<T>
    where
        T: Clone,
    {
        self.try_peek_map(pred, |item| item.clone())
    }

    /// [`peek_wait`](Self::peek_wait) without the clone: block until an
    /// item satisfying `pred` is present and return `proj` of the oldest
    /// match, computed under the shard locks. The hot announce path only
    /// needs a source id or a flag out of a queued frame — projecting
    /// avoids cloning the frame (and its payload refcounts) on every poll.
    pub fn peek_wait_map<U>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        proj: impl FnOnce(&T) -> U,
    ) -> U {
        // The projection is FnOnce but attempts may fail repeatedly; only
        // take it out of the Option once a match is actually in hand.
        let mut proj = Some(proj);
        self.block_on(|| {
            let guards = self.open_nonempty();
            let (gi, pos) = Self::best_match(&guards, &mut pred)?;
            let p = proj.take().expect("only one attempt can succeed");
            Some(p(&guards[gi].1[pos].item))
        })
    }

    /// Non-blocking [`peek_wait_map`](Self::peek_wait_map): `proj` of the
    /// oldest matching item, if any — no clone.
    pub fn try_peek_map<U>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        proj: impl FnOnce(&T) -> U,
    ) -> Option<U> {
        let guards = self.open_nonempty();
        let (gi, pos) = Self::best_match(&guards, &mut pred)?;
        Some(proj(&guards[gi].1[pos].item))
    }

    /// Number of queued items matching `pred`, without consuming anything.
    /// (The BIP stack sizes its credit refills from the queued-short count;
    /// this replaces its old trick of scanning via an always-false
    /// `try_recv_match` predicate.)
    pub fn count_match(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let guards = self.open_nonempty();
        let mut n = 0;
        for (_, g) in &guards {
            for s in g.iter() {
                if pred(&s.item) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of queued items (racy; for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.count.load(Ordering::Acquire))
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operations that touched exactly one shard (lock-free ring pushes
    /// plus keyed receives/peeks). Exposed as `mailbox_shard_hits`.
    pub fn shard_hits(&self) -> u64 {
        self.inner.shard_hits.load(Ordering::Relaxed)
    }

    /// Pushes that found their shard's ring full and spilled to the
    /// staging deque under the shard lock.
    pub fn ring_overflows(&self) -> u64 {
        self.inner.ring_overflows.load(Ordering::Relaxed)
    }

    /// Predicate operations that had to open every non-empty shard.
    pub fn full_scans(&self) -> u64 {
        self.inner.full_scans.load(Ordering::Relaxed)
    }
}

impl<T: Shardable> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Frame-specific demux facade: the shared queries the protocol stacks
/// (tcp / sbp / bip / via) build their receive paths from, so each stack
/// no longer hand-rolls its own `peek_pending_src` helper.
impl Mailbox<Frame> {
    /// Block until a frame of `kind` carrying `tag` (any source) is
    /// queued; report its source **without consuming the frame**. This is
    /// the announce query behind every stack's `wait_pending_src`.
    pub fn wait_src_of(&self, kind: u16, tag: u64) -> NodeId {
        self.peek_wait_map(|f| f.kind == kind && f.tag == tag, |f| f.src)
    }

    /// Non-blocking [`wait_src_of`](Self::wait_src_of).
    pub fn poll_src_of(&self, kind: u16, tag: u64) -> Option<NodeId> {
        self.try_peek_map(|f| f.kind == kind && f.tag == tag, |f| f.src)
    }

    /// Targeted blocking receive: oldest frame from `src` of `kind`
    /// satisfying `pred`. Single-shard.
    pub fn recv_from(&self, src: NodeId, kind: u16, pred: impl FnMut(&Frame) -> bool) -> Frame {
        self.recv_keyed(Frame::demux_key(src, kind), pred)
    }

    /// Targeted non-blocking receive. Single-shard.
    pub fn try_recv_from(
        &self,
        src: NodeId,
        kind: u16,
        pred: impl FnMut(&Frame) -> bool,
    ) -> Option<Frame> {
        self.try_recv_keyed(Frame::demux_key(src, kind), pred)
    }

    /// Targeted receive with a real-time deadline. Single-shard.
    pub fn recv_from_timeout(
        &self,
        src: NodeId,
        kind: u16,
        pred: impl FnMut(&Frame) -> bool,
        timeout: Duration,
    ) -> Option<Frame> {
        self.recv_keyed_timeout(Frame::demux_key(src, kind), pred, timeout)
    }

    /// Whether a frame from `src` of `kind` satisfying `pred` is queued.
    /// Single-shard, non-consuming.
    pub fn has_from(&self, src: NodeId, kind: u16, pred: impl FnMut(&Frame) -> bool) -> bool {
        self.try_peek_keyed_map(Frame::demux_key(src, kind), pred, |_| ())
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    impl Shardable for i32 {
        fn shard_key(&self) -> u64 {
            *self as u64
        }
    }

    #[test]
    fn push_then_recv_fifo() {
        let m = Mailbox::new();
        m.push(1);
        m.push(2);
        assert_eq!(m.recv(), 1);
        assert_eq!(m.recv(), 2);
    }

    #[test]
    fn recv_match_skips_non_matching() {
        let m = Mailbox::new();
        m.push(1);
        m.push(2);
        m.push(3);
        assert_eq!(m.recv_match(|&x| x % 2 == 0), 2);
        // Non-matching items stayed queued in order.
        assert_eq!(m.recv(), 1);
        assert_eq!(m.recv(), 3);
    }

    #[test]
    fn try_recv_match_returns_none_when_absent() {
        let m: Mailbox<i32> = Mailbox::new();
        assert!(m.try_recv_match(|_| true).is_none());
        m.push(5);
        assert_eq!(m.try_recv_match(|&x| x == 9), None);
        assert_eq!(m.try_recv_match(|&x| x == 5), Some(5));
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let m = Mailbox::new();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.recv_match(|&x| x == 42));
        thread::sleep(Duration::from_millis(20));
        m.push(7); // wrong item: receiver keeps waiting
        m.push(42);
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(m.recv(), 7);
    }

    #[test]
    fn two_waiters_with_different_predicates() {
        let m = Mailbox::new();
        let (ma, mb) = (m.clone(), m.clone());
        let ha = thread::spawn(move || ma.recv_match(|&x| x == 1));
        let hb = thread::spawn(move || mb.recv_match(|&x| x == 2));
        thread::sleep(Duration::from_millis(20));
        m.push(2);
        m.push(1);
        assert_eq!(ha.join().unwrap(), 1);
        assert_eq!(hb.join().unwrap(), 2);
    }

    #[test]
    fn fifo_among_matches() {
        let m = Mailbox::new();
        for i in [10, 11, 12, 13] {
            m.push(i);
        }
        assert_eq!(m.recv_match(|&x| x % 2 == 1), 11);
        assert_eq!(m.recv_match(|&x| x % 2 == 1), 13);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fifo_preserved_across_shards() {
        // Consecutive keys land in different shards; the global stamp must
        // still deliver them in push order to a predicate receive.
        let m = Mailbox::new();
        for i in 0..64 {
            m.push(i);
        }
        for i in 0..64 {
            assert_eq!(m.recv(), i);
        }
    }

    #[test]
    fn keyed_recv_only_sees_its_key() {
        let m = Mailbox::new();
        m.push(7);
        m.push(9);
        // 7 and 9 may or may not share a shard; the key filter must
        // separate them either way.
        assert_eq!(m.try_recv_keyed(9, |_| true), Some(9));
        assert_eq!(m.try_recv_keyed(9, |_| true), None);
        assert_eq!(m.try_recv_keyed(7, |_| true), Some(7));
    }

    #[test]
    fn keyed_recv_blocks_until_key_arrives() {
        let m = Mailbox::new();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.recv_keyed(5, |_| true));
        thread::sleep(Duration::from_millis(20));
        m.push(6); // different key: waiter stays parked
        m.push(5);
        assert_eq!(h.join().unwrap(), 5);
        assert_eq!(m.recv(), 6);
    }

    #[test]
    fn keyed_timeout_expires_empty() {
        let m: Mailbox<i32> = Mailbox::new();
        let got = m.recv_keyed_timeout(3, |_| true, Duration::from_millis(10));
        assert_eq!(got, None);
    }

    #[test]
    fn count_match_counts_without_consuming() {
        let m = Mailbox::new();
        for i in [1, 2, 3, 4, 5] {
            m.push(i);
        }
        assert_eq!(m.count_match(|&x| x % 2 == 1), 3);
        assert_eq!(m.len(), 5, "count must not consume");
    }

    #[test]
    fn ring_overflow_spills_to_staging_without_loss() {
        // Same key for every item: one shard's ring (RING_CAP) must
        // overflow into staging; nothing may be lost or reordered.
        let m = Mailbox::new();
        let n = (RING_CAP * 3) as i32;
        for _ in 0..n {
            m.push(8);
        }
        assert!(m.ring_overflows() > 0);
        assert_eq!(m.len(), n as usize);
        for _ in 0..n {
            assert_eq!(m.try_recv_keyed(8, |_| true), Some(8));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn contention_counters_move() {
        let m = Mailbox::new();
        m.push(1);
        assert_eq!(m.shard_hits(), 1, "ring push is a shard hit");
        m.try_recv_keyed(1, |_| true);
        assert_eq!(m.shard_hits(), 2, "keyed receive is a shard hit");
        m.push(2);
        let before = m.full_scans();
        m.try_recv_match(|_| true);
        assert!(m.full_scans() > before);
    }

    /// A type that panics if cloned: proves the projection peeks really
    /// never clone the queued item.
    struct NoClone(u32);
    impl Clone for NoClone {
        fn clone(&self) -> Self {
            panic!("peeked item was cloned");
        }
    }
    impl Shardable for NoClone {
        fn shard_key(&self) -> u64 {
            self.0 as u64
        }
    }

    #[test]
    fn try_peek_map_does_not_clone_or_consume() {
        let m = Mailbox::new();
        assert_eq!(m.try_peek_map(|_: &NoClone| true, |x| x.0), None);
        m.push(NoClone(7));
        m.push(NoClone(8));
        assert_eq!(m.try_peek_map(|x| x.0 > 7, |x| x.0), Some(8));
        assert_eq!(m.len(), 2, "peek must not consume");
    }

    #[test]
    fn peek_wait_map_wakes_on_push_without_cloning() {
        let m = Mailbox::new();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.peek_wait_map(|x: &NoClone| x.0 == 42, |x| x.0));
        thread::sleep(Duration::from_millis(20));
        m.push(NoClone(42));
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(m.len(), 1, "peek must not consume");
    }

    /// A (key, sequence) item for the interleaving test below: items with
    /// the same key share a shard stream, like frames from one peer.
    struct Keyed {
        key: u64,
        seq: u64,
    }
    impl Shardable for Keyed {
        fn shard_key(&self) -> u64 {
            self.key
        }
    }

    /// Seeded multi-thread interleaving over the shard demux: one producer
    /// and one keyed consumer per key, all running concurrently, with
    /// xorshift-paced yields perturbing the schedule differently per seed.
    /// Every consumer must see *its* key's items exactly once, in push
    /// order (the per-key FIFO the old single-lock mailbox guaranteed),
    /// regardless of how keys collide onto shards or how often rings
    /// overflow into staging.
    #[test]
    fn keyed_streams_stay_fifo_under_seeded_interleaving() {
        const KEYS: u64 = 4;
        const PER_KEY: u64 = 2000;
        for seed in [0x9E37_79B9u64, 0xDEAD_BEEF, 0x1234_5678] {
            let m: Mailbox<Keyed> = Mailbox::new();
            thread::scope(|s| {
                for key in 0..KEYS {
                    let mp = m.clone();
                    let mut rng = seed ^ (key.wrapping_mul(0x85EB_CA6B) | 1);
                    s.spawn(move || {
                        for seq in 0..PER_KEY {
                            mp.push(Keyed { key, seq });
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            if rng % 7 == 0 {
                                thread::yield_now();
                            }
                        }
                    });
                    let mc = m.clone();
                    let mut rng = seed ^ (key.wrapping_mul(0xC2B2_AE35) | 1);
                    s.spawn(move || {
                        for expect in 0..PER_KEY {
                            let got = mc.recv_keyed(key, |_| true);
                            assert_eq!(got.key, key, "keyed recv crossed streams");
                            assert_eq!(
                                got.seq, expect,
                                "key {key} out of order under seed {seed:#x}"
                            );
                            rng ^= rng << 13;
                            rng ^= rng >> 7;
                            rng ^= rng << 17;
                            if rng % 5 == 0 {
                                thread::yield_now();
                            }
                        }
                    });
                }
            });
            assert!(m.is_empty(), "items lost or duplicated under {seed:#x}");
            assert!(m.shard_hits() > 0);
        }
    }
}
