//! Blocking, selectively-receivable mailboxes.
//!
//! A [`Mailbox`] is the real-data transport primitive of the simulated
//! fabric: senders push items, receivers block until an item matching a
//! predicate arrives. Unlike a plain channel, `recv_match` lets a protocol
//! stack wait for a *specific* frame (a CTS from node 3, a credit return on
//! channel 7) while unrelated frames stay queued — which is exactly how
//! NIC receive queues are demultiplexed by the real stacks Madeleine drives.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// A multi-producer, multi-consumer mailbox with predicate receive.
pub struct Mailbox<T> {
    inner: Arc<MailboxInner<T>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct MailboxInner<T> {
    queue: Mutex<VecDeque<T>>,
    cond: Condvar,
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox {
            inner: Arc::new(MailboxInner {
                queue: Mutex::new(VecDeque::new()),
                cond: Condvar::new(),
            }),
        }
    }

    /// Deposit an item and wake all waiting receivers (they re-check their
    /// predicates; only matching ones consume).
    pub fn push(&self, item: T) {
        let mut q = self.inner.queue.lock();
        q.push_back(item);
        // notify_all: receivers wait on *different* predicates, so a
        // notify_one could wake the wrong one and lose the wakeup.
        self.inner.cond.notify_all();
    }

    /// Block until an item satisfying `pred` is present; remove and return
    /// the *oldest* matching item (FIFO among matches).
    pub fn recv_match(&self, mut pred: impl FnMut(&T) -> bool) -> T {
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(&mut pred) {
                return q.remove(pos).expect("position just found");
            }
            self.inner.cond.wait(&mut q);
        }
    }

    /// [`recv_match`](Self::recv_match) with a *real-time* deadline:
    /// returns `None` if no matching item arrived within `timeout`. The
    /// fault-aware stacks use this to bound their ack waits — on the
    /// no-fault path nothing ever times out, so the plain blocking
    /// receives stay untouched.
    pub fn recv_match_timeout(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        timeout: std::time::Duration,
    ) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(&mut pred) {
                return q.remove(pos);
            }
            if self.inner.cond.wait_until(&mut q, deadline).timed_out() {
                return q.iter().position(&mut pred).and_then(|pos| q.remove(pos));
            }
        }
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match).
    pub fn try_recv_match(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut q = self.inner.queue.lock();
        let pos = q.iter().position(&mut pred)?;
        q.remove(pos)
    }

    /// Block until any item is present; FIFO.
    pub fn recv(&self) -> T {
        self.recv_match(|_| true)
    }

    /// Block until an item satisfying `pred` is present and return a clone
    /// of the oldest match **without consuming it** (used by protocol
    /// stacks to announce incoming traffic before committing to receive).
    pub fn peek_wait(&self, mut pred: impl FnMut(&T) -> bool) -> T
    where
        T: Clone,
    {
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(item) = q.iter().find(|x| pred(x)) {
                return item.clone();
            }
            self.inner.cond.wait(&mut q);
        }
    }

    /// Non-blocking peek: clone of the oldest matching item, if any.
    pub fn try_peek(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T>
    where
        T: Clone,
    {
        let q = self.inner.queue.lock();
        q.iter().find(|x| pred(x)).cloned()
    }

    /// [`peek_wait`](Self::peek_wait) without the clone: block until an
    /// item satisfying `pred` is present and return `proj` of the oldest
    /// match, computed under the lock. The hot announce path only needs a
    /// source id or a flag out of a queued frame — projecting avoids
    /// cloning the frame (and its payload refcounts) on every poll.
    pub fn peek_wait_map<U>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        proj: impl FnOnce(&T) -> U,
    ) -> U {
        let mut q = self.inner.queue.lock();
        loop {
            if let Some(item) = q.iter().find(|x| pred(x)) {
                return proj(item);
            }
            self.inner.cond.wait(&mut q);
        }
    }

    /// Non-blocking [`peek_wait_map`](Self::peek_wait_map): `proj` of the
    /// oldest matching item, if any — no clone.
    pub fn try_peek_map<U>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        proj: impl FnOnce(&T) -> U,
    ) -> Option<U> {
        let q = self.inner.queue.lock();
        q.iter().find(|x| pred(x)).map(proj)
    }

    /// Number of queued items (racy; for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn push_then_recv_fifo() {
        let m = Mailbox::new();
        m.push(1);
        m.push(2);
        assert_eq!(m.recv(), 1);
        assert_eq!(m.recv(), 2);
    }

    #[test]
    fn recv_match_skips_non_matching() {
        let m = Mailbox::new();
        m.push(1);
        m.push(2);
        m.push(3);
        assert_eq!(m.recv_match(|&x| x % 2 == 0), 2);
        // Non-matching items stayed queued in order.
        assert_eq!(m.recv(), 1);
        assert_eq!(m.recv(), 3);
    }

    #[test]
    fn try_recv_match_returns_none_when_absent() {
        let m: Mailbox<i32> = Mailbox::new();
        assert!(m.try_recv_match(|_| true).is_none());
        m.push(5);
        assert_eq!(m.try_recv_match(|&x| x == 9), None);
        assert_eq!(m.try_recv_match(|&x| x == 5), Some(5));
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let m = Mailbox::new();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.recv_match(|&x| x == 42));
        thread::sleep(Duration::from_millis(20));
        m.push(7); // wrong item: receiver keeps waiting
        m.push(42);
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(m.recv(), 7);
    }

    #[test]
    fn two_waiters_with_different_predicates() {
        let m = Mailbox::new();
        let (ma, mb) = (m.clone(), m.clone());
        let ha = thread::spawn(move || ma.recv_match(|&x| x == 1));
        let hb = thread::spawn(move || mb.recv_match(|&x| x == 2));
        thread::sleep(Duration::from_millis(20));
        m.push(2);
        m.push(1);
        assert_eq!(ha.join().unwrap(), 1);
        assert_eq!(hb.join().unwrap(), 2);
    }

    #[test]
    fn fifo_among_matches() {
        let m = Mailbox::new();
        for i in [10, 11, 12, 13] {
            m.push(i);
        }
        assert_eq!(m.recv_match(|&x| x % 2 == 1), 11);
        assert_eq!(m.recv_match(|&x| x % 2 == 1), 13);
        assert_eq!(m.len(), 2);
    }

    /// A type that panics if cloned: proves the projection peeks really
    /// never clone the queued item.
    struct NoClone(u32);
    impl Clone for NoClone {
        fn clone(&self) -> Self {
            panic!("peeked item was cloned");
        }
    }

    #[test]
    fn try_peek_map_does_not_clone_or_consume() {
        let m = Mailbox::new();
        assert_eq!(m.try_peek_map(|_: &NoClone| true, |x| x.0), None);
        m.push(NoClone(7));
        m.push(NoClone(8));
        assert_eq!(m.try_peek_map(|x| x.0 > 7, |x| x.0), Some(8));
        assert_eq!(m.len(), 2, "peek must not consume");
    }

    #[test]
    fn peek_wait_map_wakes_on_push_without_cloning() {
        let m = Mailbox::new();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.peek_wait_map(|x: &NoClone| x.0 == 42, |x| x.0));
        thread::sleep(Duration::from_millis(20));
        m.push(NoClone(42));
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(m.len(), 1, "peek must not consume");
    }
}
