//! Virtual time.
//!
//! The simulated fabric moves *real bytes* between *real threads*, but all
//! performance figures are expressed in **virtual time**: a logical clock that
//! each simulated NIC, link, and bus operation advances by a calibrated cost.
//!
//! The synchronization rule is the classic conservative one used by
//! LogP-style simulators: every frame carries its virtual arrival timestamp,
//! and a receiver entering a blocking receive sets its clock to
//! `max(local_now, frame.arrival)`. Shared resources (e.g. a PCI bus) hand
//! out reservations from a timeline so that two virtual transfers never
//! overlap more than the contention model allows.
//!
//! Clocks are per *thread*, not per node: a gateway node legitimately runs
//! two pipeline threads with independent clocks that synchronize through
//! buffer hand-offs.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since session start.
///
/// Nanosecond resolution keeps sub-microsecond costs (per-pack switch
/// overhead, PIO word costs) representable without floating-point drift.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(u64);

impl VTime {
    pub const ZERO: VTime = VTime(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_since(self, earlier: VTime) -> VDuration {
        VDuration(self.0.saturating_sub(earlier.0))
    }

    /// Move this instant `d` earlier, clamping at time zero.
    #[inline]
    pub fn saturating_sub(self, d: VDuration) -> VTime {
        VTime(self.0.saturating_sub(d.0))
    }

    #[inline]
    pub fn min(self, other: VTime) -> VTime {
        VTime(self.0.min(other.0))
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDuration(u64);

impl VDuration {
    pub const ZERO: VDuration = VDuration(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VDuration(ns)
    }

    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        VDuration((us * 1_000.0).round() as u64)
    }

    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VDuration(us * 1_000)
    }

    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scale the duration by a dimensionless factor (e.g. a contention
    /// slowdown). Factors below 1.0 shorten, above 1.0 lengthen.
    #[inline]
    pub fn scale(self, factor: f64) -> VDuration {
        debug_assert!(factor >= 0.0, "negative scale factor");
        VDuration((self.0 as f64 * factor).round() as u64)
    }

    #[inline]
    pub fn max(self, other: VDuration) -> VDuration {
        VDuration(self.0.max(other.0))
    }
}

impl fmt::Debug for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for VDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<VDuration> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDuration) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDuration> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Add<VDuration> for VDuration {
    type Output = VDuration;
    #[inline]
    fn add(self, rhs: VDuration) -> VDuration {
        VDuration(self.0 + rhs.0)
    }
}

impl AddAssign<VDuration> for VDuration {
    #[inline]
    fn add_assign(&mut self, rhs: VDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VDuration> for VDuration {
    type Output = VDuration;
    #[inline]
    fn sub(self, rhs: VDuration) -> VDuration {
        VDuration(self.0.saturating_sub(rhs.0))
    }
}

/// Shared handle to a thread's virtual clock.
///
/// The clock value is also mirrored into an `AtomicU64` so *other* threads
/// (e.g. a test harness computing a global makespan) can observe it without
/// synchronizing with the owner.
#[derive(Clone)]
pub struct ClockHandle {
    inner: Arc<ClockInner>,
}

struct ClockInner {
    now: AtomicU64,
}

impl ClockHandle {
    pub fn new() -> Self {
        ClockHandle {
            inner: Arc::new(ClockInner {
                now: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn now(&self) -> VTime {
        VTime(self.inner.now.load(Ordering::Acquire))
    }

    /// Advance the clock by `d`. Returns the new time.
    #[inline]
    pub fn advance(&self, d: VDuration) -> VTime {
        let new = self.inner.now.fetch_add(d.0, Ordering::AcqRel) + d.0;
        VTime(new)
    }

    /// Move the clock forward to `t` if `t` is later than now; never moves
    /// the clock backwards. Returns the resulting time.
    #[inline]
    pub fn advance_to(&self, t: VTime) -> VTime {
        let mut cur = self.inner.now.load(Ordering::Acquire);
        loop {
            if t.0 <= cur {
                return VTime(cur);
            }
            match self.inner.now.compare_exchange_weak(
                cur,
                t.0,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Default for ClockHandle {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static THREAD_CLOCK: Cell<Option<ClockHandle>> = const { Cell::new(None) };
}

/// Install `clock` as the current thread's virtual clock. Returns the
/// previously installed clock, if any, so nested scopes can restore it.
pub fn install_clock(clock: ClockHandle) -> Option<ClockHandle> {
    THREAD_CLOCK.with(|c| c.replace(Some(clock)))
}

/// Remove the current thread's clock (restoring `prev` if given).
pub fn restore_clock(prev: Option<ClockHandle>) {
    THREAD_CLOCK.with(|c| c.replace(prev));
}

/// Fetch the current thread's clock.
///
/// # Panics
/// Panics if the thread has no installed clock — i.e. the code is running
/// outside a simulated node thread. Every thread spawned through
/// [`crate::world::World`] or [`crate::world::NodeEnv::spawn_thread`] has one.
pub fn clock() -> ClockHandle {
    THREAD_CLOCK.with(|c| {
        let cur = c.replace(None);
        let handle = cur
            .clone()
            .expect("no virtual clock installed on this thread (not a simulated node thread?)");
        c.replace(cur);
        handle
    })
}

/// Current thread's virtual time.
#[inline]
pub fn now() -> VTime {
    clock().now()
}

/// Advance the current thread's virtual clock by `d`.
#[inline]
pub fn advance(d: VDuration) -> VTime {
    clock().advance(d)
}

/// Advance the current thread's virtual clock to at least `t`.
#[inline]
pub fn advance_to(t: VTime) -> VTime {
    clock().advance_to(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtime_arithmetic() {
        let t = VTime::from_nanos(1_000);
        let d = VDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!(t.max(t + d), t + d);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), VDuration::ZERO);
    }

    #[test]
    fn duration_scale_rounds() {
        let d = VDuration::from_nanos(1_000);
        assert_eq!(d.scale(1.5).as_nanos(), 1_500);
        assert_eq!(d.scale(0.0).as_nanos(), 0);
        assert_eq!(d.scale(2.0).as_nanos(), 2_000);
    }

    #[test]
    fn duration_from_micros_f64() {
        assert_eq!(VDuration::from_micros_f64(3.9).as_nanos(), 3_900);
        assert_eq!(VDuration::from_micros_f64(0.0005).as_nanos(), 1);
    }

    #[test]
    fn clock_advances_monotonically() {
        let c = ClockHandle::new();
        assert_eq!(c.now(), VTime::ZERO);
        c.advance(VDuration::from_micros(5));
        assert_eq!(c.now().as_nanos(), 5_000);
        // advance_to backwards is a no-op
        c.advance_to(VTime::from_nanos(1_000));
        assert_eq!(c.now().as_nanos(), 5_000);
        c.advance_to(VTime::from_nanos(9_000));
        assert_eq!(c.now().as_nanos(), 9_000);
    }

    #[test]
    fn thread_local_clock_install() {
        let c = ClockHandle::new();
        let prev = install_clock(c.clone());
        assert!(prev.is_none());
        advance(VDuration::from_micros(1));
        assert_eq!(now().as_nanos(), 1_000);
        assert_eq!(c.now().as_nanos(), 1_000);
        restore_clock(prev);
    }

    #[test]
    fn clock_shared_across_handles() {
        let c = ClockHandle::new();
        let c2 = c.clone();
        c.advance(VDuration::from_micros(7));
        assert_eq!(c2.now().as_nanos(), 7_000);
    }

    #[test]
    fn missing_clock_panics() {
        // A brand-new thread has no clock; reading it must panic there.
        let joined = std::thread::spawn(|| {
            let _ = now();
        })
        .join();
        assert!(joined.is_err());
    }
}
