//! Raw frames exchanged between adapters.

use crate::time::VTime;
use bytes::Bytes;

/// Global node identifier within a [`crate::world::World`].
pub type NodeId = usize;

/// A raw frame on a simulated network.
///
/// Frames are the unit the raw adapters move; each protocol stack defines
/// its own meaning for `kind` and `tag` (BIP uses them for short/long/RTS/
/// CTS demultiplexing, SISCI for segment notifications, ...). `arrival` is
/// the virtual time at which the frame becomes visible at the receiver; the
/// sending stack computes it from its calibrated cost model.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Protocol-defined frame kind (e.g. DATA / RTS / CTS / CREDIT).
    pub kind: u16,
    /// Protocol-defined demultiplexing tag (e.g. a Madeleine channel id).
    pub tag: u64,
    /// Virtual arrival time at the receiver.
    pub arrival: VTime,
    /// Payload bytes. Cheaply cloneable; zero-copy slices of user data.
    pub payload: Bytes,
}

impl Frame {
    /// A payload-less control frame.
    pub fn control(src: NodeId, kind: u16, tag: u64, arrival: VTime) -> Self {
        Frame {
            src,
            kind,
            tag,
            arrival,
            payload: Bytes::new(),
        }
    }

    /// The mailbox demux key of a `(src, kind)` pair: the granularity at
    /// which the sharded [`crate::mailbox::Mailbox`] separates traffic, so
    /// a targeted receive ("the ack from node 3") opens a single shard.
    pub fn demux_key(src: NodeId, kind: u16) -> u64 {
        ((src as u64) << 16) | kind as u64
    }
}

impl crate::mailbox::Shardable for Frame {
    fn shard_key(&self) -> u64 {
        Frame::demux_key(self.src, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frame_is_empty() {
        let f = Frame::control(3, 7, 99, VTime::from_nanos(5));
        assert_eq!(f.src, 3);
        assert_eq!(f.kind, 7);
        assert_eq!(f.tag, 99);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn payload_clone_is_shallow() {
        let data = Bytes::from(vec![1u8; 1024]);
        let f = Frame {
            src: 0,
            kind: 0,
            tag: 0,
            arrival: VTime::ZERO,
            payload: data.clone(),
        };
        let g = f.clone();
        // Same backing storage: Bytes clones share the allocation.
        assert_eq!(g.payload.as_ptr(), data.as_ptr());
    }
}
