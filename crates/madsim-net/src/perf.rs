//! Calibrated performance curves.
//!
//! Each simulated protocol stack owns a [`PerfCurve`]: a piecewise-linear
//! interpolation of *one-way transfer time* over message size, anchored on
//! the numbers the paper itself reports (min latency, bandwidth at 8 kB /
//! 16 kB, asymptotic bandwidth). Between anchors the curve interpolates
//! linearly in message size; beyond the last anchor it extrapolates with the
//! slope of the final segment, i.e. the asymptotic bandwidth.
//!
//! The paper quotes bandwidth in "MB/s" meaning **MiB/s** (2^20 bytes per
//! second): this is the only reading that makes its §6.2.2 arithmetic
//! consistent (8 kB packets at 47 MB/s ⇒ "pipeline period at least 166 µs"
//! only holds for MiB). All bandwidth helpers here therefore use MiB/s.

use crate::time::VDuration;

/// Bytes per microsecond corresponding to one MiB/s.
pub const MIB_PER_S_IN_BYTES_PER_US: f64 = 1.048576;

/// Convert a (bytes, duration) pair to MiB/s.
pub fn mibps(bytes: usize, dur: VDuration) -> f64 {
    let us = dur.as_micros_f64();
    if us == 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 / us / MIB_PER_S_IN_BYTES_PER_US
}

/// One-way time for `bytes` at a constant bandwidth of `mibps` MiB/s.
pub fn time_at_mibps(bytes: usize, mibps: f64) -> VDuration {
    VDuration::from_micros_f64(bytes as f64 / (mibps * MIB_PER_S_IN_BYTES_PER_US))
}

/// A piecewise-linear one-way-time curve over message size.
#[derive(Clone, Debug)]
pub struct PerfCurve {
    /// (message size in bytes, one-way time in µs), strictly increasing in
    /// both coordinates.
    anchors: Vec<(usize, f64)>,
}

impl PerfCurve {
    /// Build a curve from `(bytes, one_way_us)` anchors.
    ///
    /// # Panics
    /// Panics if fewer than two anchors are given or if either coordinate is
    /// not strictly increasing (a non-monotone time curve would imply
    /// negative incremental bandwidth).
    pub fn from_anchors(anchors: &[(usize, f64)]) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        for w in anchors.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "anchor sizes must be strictly increasing: {:?}",
                anchors
            );
            assert!(
                w[0].1 < w[1].1,
                "anchor times must be strictly increasing: {:?}",
                anchors
            );
        }
        PerfCurve {
            anchors: anchors.to_vec(),
        }
    }

    /// One-way transfer time for a message of `bytes` bytes.
    pub fn time_for(&self, bytes: usize) -> VDuration {
        VDuration::from_micros_f64(self.time_us(bytes))
    }

    fn time_us(&self, bytes: usize) -> f64 {
        let a = &self.anchors;
        let x = bytes as f64;
        // Below the first anchor: constant (the min-latency floor).
        if bytes <= a[0].0 {
            return a[0].1;
        }
        for w in a.windows(2) {
            let (x0, y0) = (w[0].0 as f64, w[0].1);
            let (x1, y1) = (w[1].0 as f64, w[1].1);
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        // Beyond the last anchor: extrapolate at the asymptotic rate.
        let n = a.len();
        let (x0, y0) = (a[n - 2].0 as f64, a[n - 2].1);
        let (x1, y1) = (a[n - 1].0 as f64, a[n - 1].1);
        y1 + (y1 - y0) * (x - x1) / (x1 - x0)
    }

    /// Effective bandwidth (MiB/s) at a given size.
    pub fn bandwidth_at(&self, bytes: usize) -> f64 {
        mibps(bytes, self.time_for(bytes))
    }

    /// The asymptotic bandwidth implied by the final segment, in MiB/s.
    pub fn asymptotic_bandwidth(&self) -> f64 {
        let n = self.anchors.len();
        let (x0, y0) = (self.anchors[n - 2].0 as f64, self.anchors[n - 2].1);
        let (x1, y1) = (self.anchors[n - 1].0 as f64, self.anchors[n - 1].1);
        (x1 - x0) / (y1 - y0) / MIB_PER_S_IN_BYTES_PER_US
    }

    /// Smallest anchored size (the latency floor applies below it).
    pub fn min_size(&self) -> usize {
        self.anchors[0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_anchors() {
        let c = PerfCurve::from_anchors(&[(0, 10.0), (100, 20.0), (200, 40.0)]);
        assert_eq!(c.time_for(0).as_micros_f64(), 10.0);
        assert_eq!(c.time_for(50).as_micros_f64(), 15.0);
        assert_eq!(c.time_for(100).as_micros_f64(), 20.0);
        assert_eq!(c.time_for(150).as_micros_f64(), 30.0);
    }

    #[test]
    fn extrapolates_with_last_slope() {
        let c = PerfCurve::from_anchors(&[(0, 10.0), (100, 20.0)]);
        // slope = 0.1 us/byte
        assert_eq!(c.time_for(200).as_micros_f64(), 30.0);
        assert_eq!(c.time_for(1000).as_micros_f64(), 110.0);
    }

    #[test]
    fn latency_floor_below_first_anchor() {
        let c = PerfCurve::from_anchors(&[(4, 3.9), (1024, 20.0)]);
        assert_eq!(c.time_for(0).as_micros_f64(), 3.9);
        assert_eq!(c.time_for(4).as_micros_f64(), 3.9);
    }

    #[test]
    fn asymptotic_bandwidth_from_final_segment() {
        // final segment: 100 bytes per 10us = 10 B/us = 9.5367 MiB/s
        let c = PerfCurve::from_anchors(&[(0, 10.0), (100, 20.0)]);
        let bw = c.asymptotic_bandwidth();
        assert!((bw - 10.0 / MIB_PER_S_IN_BYTES_PER_US).abs() < 1e-9);
    }

    #[test]
    fn mibps_roundtrip() {
        let d = time_at_mibps(8192, 47.0);
        let bw = mibps(8192, d);
        assert!((bw - 47.0).abs() < 0.01, "got {bw}");
    }

    #[test]
    fn paper_pipeline_arithmetic_holds_in_mib() {
        // §6.2.2: 8 kB at 47 MB/s over BIP ⇒ 166 µs; at 58 MB/s over SISCI
        // ⇒ 135 µs; observed 36.5 MB/s ⇒ ~215 µs period.
        assert!((time_at_mibps(8192, 47.0).as_micros_f64() - 166.2).abs() < 0.5);
        assert!((time_at_mibps(8192, 58.0).as_micros_f64() - 134.7).abs() < 0.5);
        assert!((time_at_mibps(8192, 36.5).as_micros_f64() - 214.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_anchors() {
        let _ = PerfCurve::from_anchors(&[(0, 10.0), (100, 5.0)]);
    }

    #[test]
    fn bandwidth_monotone_for_concave_curve() {
        let c = PerfCurve::from_anchors(&[(4, 5.0), (1024, 15.0), (65536, 600.0)]);
        let mut prev = 0.0;
        for s in [4usize, 64, 512, 1024, 8192, 65536, 1 << 20] {
            let bw = c.bandwidth_at(s);
            assert!(bw >= prev, "bandwidth dipped at {s}: {bw} < {prev}");
            prev = bw;
        }
    }
}
