//! Cluster topology: worlds, nodes, networks, adapters.
//!
//! A [`World`] is a set of nodes (each backed by a real OS thread when the
//! world runs) connected by one or more named networks. A node that is a
//! member of a network owns an [`Adapter`] on it — the simulated NIC.
//! Clusters-of-clusters configurations are expressed naturally: a gateway
//! node is simply a member of two networks (paper §6).

use crate::fault::{FaultPlan, FaultState};
use crate::frame::{Frame, NodeId};
use crate::mailbox::Mailbox;
use crate::pci::{PciBus, PciConfig};
use crate::time::{self, ClockHandle, VDuration, VTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// World topology entry: one network's name, fabric kind, and members.
pub type TopologyEntry = (Arc<str>, NetKind, Arc<[NodeId]>);

/// Hardware family of a network. Protocol stacks assert they are
/// instantiated on a compatible fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Dolphin SCI ring/torus (remote-mapped segments; SISCI stack).
    Sci,
    /// Myricom Myrinet (LANai NIC; BIP stack).
    Myrinet,
    /// Commodity Fast Ethernet (TCP and SBP stacks).
    Ethernet,
    /// A VIA-capable SAN (GigaNet cLAN-like; VIA stack).
    ViaSan,
}

/// Identifier of a network within a world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetworkId(pub usize);

struct NetworkSpec {
    name: Arc<str>,
    kind: NetKind,
    members: Vec<NodeId>,
    /// Adapters per member node (multirail). 1 for ordinary networks.
    rails: usize,
}

/// Upper bound on rails per network: the fault layer folds the rail index
/// into the upper bits of its network key (see [`crate::fault::rail_key`]).
pub const MAX_RAILS: usize = 16;

/// Builder for a [`World`].
pub struct WorldBuilder {
    n_nodes: usize,
    networks: Vec<NetworkSpec>,
    pci_cfg: PciConfig,
    faults: Option<FaultPlan>,
}

impl WorldBuilder {
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "a world needs at least one node");
        WorldBuilder {
            n_nodes,
            networks: Vec::new(),
            pci_cfg: PciConfig::default(),
            faults: None,
        }
    }

    /// Override the per-node host-bus contention constants.
    pub fn pci_config(mut self, cfg: PciConfig) -> Self {
        self.pci_cfg = cfg;
        self
    }

    /// Attach a seeded fault schedule. Adapters in the built world inject
    /// faults per [`FaultPlan`]; protocol stacks arm their recovery
    /// machinery (acks, timeouts). Without a plan the fabric is perfectly
    /// reliable and the fast path carries zero recovery overhead.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Declare a network connecting `members` (global node ids).
    ///
    /// # Panics
    /// Panics on out-of-range members, duplicate members, fewer than two
    /// members, or a duplicate network name.
    pub fn network(&mut self, name: &str, kind: NetKind, members: &[NodeId]) -> NetworkId {
        self.network_with_rails(name, kind, members, 1)
    }

    /// [`network`](Self::network) with `rails` adapters per member node —
    /// a node with several NICs on the same fabric. All rails share the
    /// network's wire (one mailbox per member) and the owning node's PCI
    /// bus; each rail is an independent fault domain (see
    /// [`crate::fault::rail_key`]).
    ///
    /// # Panics
    /// Additionally panics when `rails` is 0 or exceeds [`MAX_RAILS`].
    pub fn network_with_rails(
        &mut self,
        name: &str,
        kind: NetKind,
        members: &[NodeId],
        rails: usize,
    ) -> NetworkId {
        assert!(
            (1..=MAX_RAILS).contains(&rails),
            "network {name:?}: rails must be in 1..={MAX_RAILS}, got {rails}"
        );
        assert!(
            members.len() >= 2,
            "network {name:?} needs at least two members"
        );
        let mut seen = members.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), members.len(), "duplicate members in {name:?}");
        for &m in members {
            assert!(m < self.n_nodes, "member {m} out of range in {name:?}");
        }
        assert!(
            self.networks.iter().all(|n| &*n.name != name),
            "duplicate network name {name:?}"
        );
        let id = NetworkId(self.networks.len());
        self.networks.push(NetworkSpec {
            name: Arc::from(name),
            kind,
            members: members.to_vec(),
            rails,
        });
        id
    }

    pub fn build(self) -> World {
        // One inbound mailbox per (network, member node).
        let mut networks = Vec::with_capacity(self.networks.len());
        for spec in &self.networks {
            let mailboxes: Arc<HashMap<NodeId, Mailbox<Frame>>> =
                Arc::new(spec.members.iter().map(|&m| (m, Mailbox::new())).collect());
            networks.push(BuiltNetwork {
                uid: NEXT_NET_UID.fetch_add(1, Ordering::Relaxed),
                name: Arc::clone(&spec.name),
                kind: spec.kind,
                members: Arc::from(spec.members.as_slice()),
                rails: spec.rails,
                mailboxes,
            });
        }
        let buses = Arc::new(
            (0..self.n_nodes)
                .map(|_| PciBus::new(self.pci_cfg))
                .collect::<Vec<_>>(),
        );
        World {
            n_nodes: self.n_nodes,
            networks,
            buses,
            faults: self.faults.as_ref().map(FaultPlan::build),
        }
    }
}

static NEXT_NET_UID: AtomicU64 = AtomicU64::new(1);

struct BuiltNetwork {
    /// Process-unique id, so per-network global registries (e.g. the SISCI
    /// segment directory) never collide across worlds or tests.
    uid: u64,
    name: Arc<str>,
    kind: NetKind,
    members: Arc<[NodeId]>,
    rails: usize,
    mailboxes: Arc<HashMap<NodeId, Mailbox<Frame>>>,
}

/// A fully-built cluster (of clusters). See [`WorldBuilder`].
pub struct World {
    n_nodes: usize,
    networks: Vec<BuiltNetwork>,
    buses: Arc<Vec<PciBus>>,
    faults: Option<Arc<FaultState>>,
}

impl World {
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The fault layer's runtime state, if a [`FaultPlan`] was attached:
    /// the deterministic fault log, totals, and the dynamic crash switch.
    pub fn faults(&self) -> Option<&Arc<FaultState>> {
        self.faults.as_ref()
    }

    fn env_for(&self, node: NodeId, barrier: Arc<Barrier>) -> NodeEnv {
        let adapters = self
            .networks
            .iter()
            .enumerate()
            .filter(|(_, net)| net.members.contains(&node))
            .flat_map(|(i, net)| {
                (0..net.rails).map(move |rail| Adapter {
                    uid: net.uid,
                    net: NetworkId(i),
                    rail,
                    kind: net.kind,
                    name: Arc::clone(&net.name),
                    node,
                    peers: Arc::clone(&net.members),
                    mailboxes: Arc::clone(&net.mailboxes),
                    pci: self.buses[node].clone(),
                    all_buses: Arc::clone(&self.buses),
                    faults: self.faults.clone(),
                })
            })
            .collect();
        let topology = Arc::new(
            self.networks
                .iter()
                .map(|n| (Arc::clone(&n.name), n.kind, Arc::clone(&n.members)))
                .collect::<Vec<_>>(),
        );
        NodeEnv {
            node,
            n_nodes: self.n_nodes,
            adapters,
            pci: self.buses[node].clone(),
            barrier,
            topology,
            faults: self.faults.clone(),
        }
    }

    /// Run `f` once per node, each on its own OS thread with a fresh virtual
    /// clock, and return the per-node results in node order.
    ///
    /// Panics in any node thread are propagated (after all threads are
    /// joined, so no work is silently lost).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(NodeEnv) -> T + Send + Sync,
    {
        let barrier = Arc::new(Barrier::new(self.n_nodes));
        thread::scope(|s| {
            let mut handles = Vec::with_capacity(self.n_nodes);
            for node in 0..self.n_nodes {
                let env = self.env_for(node, Arc::clone(&barrier));
                let f = &f;
                handles.push(s.spawn(move || {
                    let prev = time::install_clock(ClockHandle::new());
                    let out = f(env);
                    time::restore_clock(prev);
                    out
                }));
            }
            let mut results = Vec::with_capacity(self.n_nodes);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(v) => results.push(v),
                    Err(e) => panic = Some(e),
                }
            }
            if let Some(e) = panic {
                std::panic::resume_unwind(e);
            }
            results
        })
    }
}

/// Per-node execution environment handed to the closure of [`World::run`].
pub struct NodeEnv {
    node: NodeId,
    n_nodes: usize,
    adapters: Vec<Adapter>,
    pci: PciBus,
    barrier: Arc<Barrier>,
    /// World topology: every network's (name, kind, members) — global
    /// configuration knowledge every node legitimately has.
    topology: Arc<Vec<TopologyEntry>>,
    faults: Option<Arc<FaultState>>,
}

impl NodeEnv {
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The world's fault layer, if one is installed.
    pub fn faults(&self) -> Option<&Arc<FaultState>> {
        self.faults.as_ref()
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// All adapters this node owns, in network-declaration order.
    pub fn adapters(&self) -> &[Adapter] {
        &self.adapters
    }

    /// The adapter on network `net`, if this node is a member.
    ///
    /// # Panics
    /// In debug builds, panics when this node owns several adapters
    /// (rails) on `net` — the singular lookup is ambiguous there; use
    /// [`adapters_on`](Self::adapters_on). Release builds return rail 0.
    pub fn adapter_on(&self, net: NetworkId) -> Option<&Adapter> {
        let mut it = self.adapters.iter().filter(|a| a.net == net);
        let first = it.next();
        debug_assert!(
            it.next().is_none(),
            "node {} owns several adapters (rails) on network {net:?}; \
             use adapters_on to get all of them",
            self.node
        );
        first
    }

    /// The adapter on the network named `name`, if this node is a member.
    ///
    /// # Panics
    /// In debug builds, panics when this node owns several adapters
    /// (rails) on that network — the singular lookup is ambiguous there;
    /// use [`adapters_named`](Self::adapters_named). Release builds return
    /// rail 0.
    pub fn adapter_named(&self, name: &str) -> Option<&Adapter> {
        let mut it = self.adapters.iter().filter(|a| &*a.name == name);
        let first = it.next();
        debug_assert!(
            it.next().is_none(),
            "node {} owns several adapters (rails) on network {name:?}; \
             use adapters_named to get all of them",
            self.node
        );
        first
    }

    /// Every adapter this node owns on network `net`, in rail order.
    /// Empty when the node is not a member.
    pub fn adapters_on(&self, net: NetworkId) -> Vec<&Adapter> {
        self.adapters.iter().filter(|a| a.net == net).collect()
    }

    /// Every adapter this node owns on the network named `name`, in rail
    /// order. Empty when the node is not a member.
    pub fn adapters_named(&self, name: &str) -> Vec<&Adapter> {
        self.adapters.iter().filter(|a| &*a.name == name).collect()
    }

    /// This node's host I/O bus.
    pub fn pci(&self) -> &PciBus {
        &self.pci
    }

    /// Members of the named network, whether or not this node is one
    /// (topology is static configuration, not a secret).
    pub fn members_of(&self, network: &str) -> Option<Vec<NodeId>> {
        self.topology
            .iter()
            .find(|(n, _, _)| &**n == network)
            .map(|(_, _, m)| m.to_vec())
    }

    /// Names and kinds of every network in the world.
    pub fn networks(&self) -> Vec<(String, NetKind)> {
        self.topology
            .iter()
            .map(|(n, k, _)| (n.to_string(), *k))
            .collect()
    }

    /// Real-time barrier across *all* nodes of the world.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Spawn an auxiliary thread on this node (e.g. a gateway pipeline
    /// half). The thread gets its own virtual clock, initialized to the
    /// spawner's current virtual time.
    pub fn spawn_thread<T, F>(&self, f: F) -> thread::JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let start = time::now();
        thread::spawn(move || {
            let clock = ClockHandle::new();
            clock.advance_to(start);
            let prev = time::install_clock(clock);
            let out = f();
            time::restore_clock(prev);
            out
        })
    }
}

/// A simulated NIC: this node's endpoint on one network.
///
/// The adapter is *raw*: it moves frames and enforces membership, but all
/// timing is charged by the protocol stack driving it (see
/// [`crate::stacks`]), mirroring how BIP/SISCI/VIA own their NICs.
#[derive(Clone)]
pub struct Adapter {
    uid: u64,
    net: NetworkId,
    /// Which of the owning node's NICs on this network this is (0-based).
    rail: usize,
    kind: NetKind,
    name: Arc<str>,
    node: NodeId,
    peers: Arc<[NodeId]>,
    mailboxes: Arc<HashMap<NodeId, Mailbox<Frame>>>,
    pci: PciBus,
    all_buses: Arc<Vec<PciBus>>,
    faults: Option<Arc<FaultState>>,
}

impl Adapter {
    /// Process-unique id of the underlying network.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    pub fn network(&self) -> NetworkId {
        self.net
    }

    /// Rail index of this adapter on its network (0 for single-rail
    /// networks).
    pub fn rail(&self) -> usize {
        self.rail
    }

    /// Is `dst` reachable over *this rail*? `true` on a fault-free world;
    /// otherwise false when `dst` is crashed, globally partitioned from
    /// us, or this rail's link to it has been cut
    /// ([`FaultPlan::partition_rail_after`]). Fail-fast checks in the
    /// stacks use this so one dead rail does not condemn its siblings.
    pub fn reachable_to(&self, dst: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|f| f.reachable_on(self.net.0, self.rail, self.node, dst))
    }

    /// The fault-domain key of this adapter: its network index with the
    /// rail folded into the upper bits (see [`crate::fault::rail_key`]).
    fn fault_key(&self) -> usize {
        crate::fault::rail_key(self.net.0, self.rail)
    }

    pub fn kind(&self) -> NetKind {
        self.kind
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node owning this adapter.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// All members of this network (including this node).
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Host bus of the owning node.
    pub fn pci(&self) -> &PciBus {
        &self.pci
    }

    /// Host bus of any node in the world. Simulation-level access: a
    /// sending stack charges the *receiver's* inbound bus crossing when it
    /// computes the frame's arrival (the NIC's bus-master transactions on
    /// the far side), which keeps contention visible to transfers the
    /// receiving node issues later.
    pub fn pci_of(&self, node: NodeId) -> &PciBus {
        &self.all_buses[node]
    }

    /// Is a fault plan installed in this world? Stacks use this to arm
    /// their recovery machinery (acks, timeouts) only when faults are
    /// possible, keeping the reliable-fabric fast path untouched.
    pub fn faulty(&self) -> bool {
        self.faults.is_some()
    }

    /// The world's fault layer, if one is installed.
    pub fn faults(&self) -> Option<&Arc<FaultState>> {
        self.faults.as_ref()
    }

    /// Deliver a frame to `dst`'s inbound mailbox on this network.
    ///
    /// When a fault plan is installed, the frame first rolls against the
    /// deterministic fault engine: it may be dropped, duplicated, delayed,
    /// or stalled (see [`crate::fault`]).
    ///
    /// # Panics
    /// Panics if `dst` is not a member of this network — the simulated wire
    /// does not reach it.
    pub fn send_raw(&self, dst: NodeId, frame: Frame) {
        self.send_judged(dst, frame, false);
    }

    /// [`send_raw`](Self::send_raw) for acknowledgment/control frames the
    /// protocol models as reliably delivered: the seeded loss roll is
    /// skipped (crashes, partitions, stalls, duplication and jitter still
    /// apply).
    ///
    /// The stop-and-wait stacks send their acks through this so the
    /// *final* ack of an exchange cannot be lost against a receiver that
    /// has already gone quiet — data-frame loss alone exercises their
    /// retransmission paths, and termination stays deterministic.
    ///
    /// # Panics
    /// Panics if `dst` is not a member of this network.
    pub fn send_raw_control(&self, dst: NodeId, frame: Frame) {
        self.send_judged(dst, frame, true);
    }

    fn send_judged(&self, dst: NodeId, mut frame: Frame, control: bool) {
        let mb = self
            .mailboxes
            .get(&dst)
            .unwrap_or_else(|| panic!("node {dst} is not on network {:?}", self.name));
        if let Some(faults) = &self.faults {
            let v = if control {
                faults.judge_control(self.fault_key(), self.node, dst)
            } else {
                faults.judge(self.fault_key(), self.node, dst)
            };
            if v.stall_ns > 0 {
                time::advance(VDuration::from_micros_f64(v.stall_ns as f64 / 1_000.0));
            }
            if !v.deliver {
                return;
            }
            if v.delay_ns > 0 {
                frame.arrival = VTime::from_nanos(frame.arrival.as_nanos() + v.delay_ns);
            }
            if v.duplicate {
                mb.push(frame.clone());
            }
        }
        mb.push(frame);
    }

    /// This node's inbound mailbox on this network.
    pub fn inbox(&self) -> &Mailbox<Frame> {
        self.mailboxes
            .get(&self.node)
            .expect("adapter owner is a member")
    }

    /// Another member's inbound mailbox (simulation-level introspection,
    /// used by stacks to enforce receiver-side capacity contracts).
    ///
    /// # Panics
    /// Panics if `node` is not a member of this network.
    pub fn inbox_of(&self, node: NodeId) -> Mailbox<Frame> {
        self.mailboxes
            .get(&node)
            .unwrap_or_else(|| panic!("node {node} is not on network {:?}", self.name))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{VDuration, VTime};
    use bytes::Bytes;

    #[test]
    fn builder_validates_membership() {
        let mut b = WorldBuilder::new(3);
        b.network("sci0", NetKind::Sci, &[0, 1, 2]);
        let w = b.build();
        assert_eq!(w.n_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range_member() {
        let mut b = WorldBuilder::new(2);
        b.network("x", NetKind::Ethernet, &[0, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate members")]
    fn builder_rejects_duplicate_member() {
        let mut b = WorldBuilder::new(3);
        b.network("x", NetKind::Ethernet, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate network name")]
    fn builder_rejects_duplicate_name() {
        let mut b = WorldBuilder::new(3);
        b.network("x", NetKind::Ethernet, &[0, 1]);
        b.network("x", NetKind::Sci, &[1, 2]);
    }

    #[test]
    fn nodes_see_only_their_networks() {
        let mut b = WorldBuilder::new(4);
        let sci = b.network("sci0", NetKind::Sci, &[0, 1]);
        let myr = b.network("myr0", NetKind::Myrinet, &[1, 2, 3]);
        let w = b.build();
        let counts = w.run(|env| {
            (
                env.adapters().len(),
                env.adapter_on(sci).is_some(),
                env.adapter_on(myr).is_some(),
            )
        });
        assert_eq!(counts[0], (1, true, false));
        assert_eq!(counts[1], (2, true, true)); // the gateway
        assert_eq!(counts[2], (1, false, true));
        assert_eq!(counts[3], (1, false, true));
    }

    #[test]
    fn multirail_network_yields_one_adapter_per_rail() {
        let mut b = WorldBuilder::new(2);
        let net = b.network_with_rails("myr0", NetKind::Myrinet, &[0, 1], 3);
        let w = b.build();
        w.run(|env| {
            let rails = env.adapters_on(net);
            assert_eq!(rails.len(), 3);
            for (i, a) in rails.iter().enumerate() {
                assert_eq!(a.rail(), i);
                assert_eq!(a.network(), net);
            }
            assert_eq!(env.adapters_named("myr0").len(), 3);
            // All rails share the network's wire: one mailbox per node.
            let f = Frame::control(env.id(), 9, 9, VTime::ZERO);
            rails[2].send_raw(1 - env.id(), f);
            let got = rails[0].inbox().recv_match(|f| f.kind == 9);
            assert_eq!(got.src, 1 - env.id());
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "use adapters_named")]
    fn singular_lookup_panics_on_multirail() {
        let mut b = WorldBuilder::new(2);
        b.network_with_rails("myr0", NetKind::Myrinet, &[0, 1], 2);
        let w = b.build();
        w.run(|env| {
            let _ = env.adapter_named("myr0");
        });
    }

    #[test]
    #[should_panic(expected = "rails must be in")]
    fn zero_rails_rejected() {
        let mut b = WorldBuilder::new(2);
        b.network_with_rails("x", NetKind::Ethernet, &[0, 1], 0);
    }

    #[test]
    fn frames_flow_between_members() {
        let mut b = WorldBuilder::new(2);
        let net = b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let out = w.run(|env| {
            let a = env.adapter_on(net).unwrap();
            if env.id() == 0 {
                a.send_raw(
                    1,
                    Frame {
                        src: 0,
                        kind: 1,
                        tag: 42,
                        arrival: VTime::from_nanos(777),
                        payload: Bytes::from_static(b"hello"),
                    },
                );
                Vec::new()
            } else {
                let f = a.inbox().recv_match(|f| f.tag == 42);
                f.payload.to_vec()
            }
        });
        assert_eq!(out[1], b"hello");
    }

    #[test]
    fn run_propagates_node_panics() {
        let mut b = WorldBuilder::new(2);
        b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run(|env| {
                if env.id() == 1 {
                    panic!("node failure");
                }
            });
        }));
        assert!(res.is_err());
    }

    #[test]
    fn node_threads_have_independent_clocks() {
        let mut b = WorldBuilder::new(2);
        b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let times = w.run(|env| {
            if env.id() == 0 {
                time::advance(VDuration::from_micros(10));
            }
            time::now().as_nanos()
        });
        assert_eq!(times[0], 10_000);
        assert_eq!(times[1], 0);
    }

    #[test]
    fn spawn_thread_inherits_virtual_time() {
        let mut b = WorldBuilder::new(2);
        b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let w = b.build();
        let out = w.run(|env| {
            time::advance(VDuration::from_micros(5));
            let h = env.spawn_thread(|| {
                time::advance(VDuration::from_micros(1));
                time::now().as_nanos()
            });
            h.join().unwrap()
        });
        assert_eq!(out, vec![6_000, 6_000]);
    }

    #[test]
    #[should_panic(expected = "is not on network")]
    fn send_to_non_member_panics() {
        let mut b = WorldBuilder::new(3);
        let net = b.network("sci0", NetKind::Sci, &[0, 1]);
        let w = b.build();
        w.run(|env| {
            if env.id() == 0 {
                let a = env.adapter_on(net).unwrap();
                a.send_raw(2, Frame::control(0, 0, 0, VTime::ZERO));
            }
        });
    }
}
