//! Edge-case and stress tests of the simulated vendor stacks.

use bytes::Bytes;
use madsim_net::stacks::bip::{Bip, BIP_SHORT_RING};
use madsim_net::stacks::sbp::{Sbp, SBP_POOL_SIZE};
use madsim_net::stacks::sisci::Sisci;
use madsim_net::stacks::tcp::TcpStack;
use madsim_net::stacks::via::Via;
use madsim_net::{NetKind, WorldBuilder};

fn pair(kind: NetKind) -> (madsim_net::World, madsim_net::NetworkId) {
    let mut b = WorldBuilder::new(2);
    let net = b.network("n0", kind, &[0, 1]);
    (b.build(), net)
}

// ---------------- BIP ----------------

#[test]
fn bip_interleaves_shorts_and_longs_in_tag_order() {
    let (w, net) = pair(NetKind::Myrinet);
    w.run(|env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            for i in 0..5u8 {
                bip.send_short(1, 1, &[i; 16]);
                bip.send_long(1, 2, Bytes::from(vec![i; 4096]));
            }
        } else {
            for i in 0..5u8 {
                let (_, s) = bip.recv_short(1);
                assert!(s.iter().all(|&b| b == i));
                let mut buf = vec![0u8; 4096];
                bip.recv_long(0, 2, &mut buf);
                assert!(buf.iter().all(|&b| b == i));
            }
        }
    });
}

#[test]
fn bip_ring_capacity_is_exactly_enforced() {
    let (w, net) = pair(NetKind::Myrinet);
    w.run(|env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            // Exactly the ring capacity is fine.
            for _ in 0..BIP_SHORT_RING {
                bip.send_short(1, 1, b"x");
            }
            env.barrier();
        } else {
            env.barrier();
            for _ in 0..BIP_SHORT_RING {
                bip.recv_short(1);
            }
        }
    });
}

#[test]
fn bip_concurrent_tags_do_not_cross() {
    let (w, net) = pair(NetKind::Myrinet);
    w.run(|env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            bip.send_short(1, 10, b"ten");
            bip.send_short(1, 20, b"twenty");
        } else {
            // Receive in reverse tag order.
            let b20 = bip.recv_short_from(0, 20);
            assert_eq!(&b20[..], b"twenty");
            let b10 = bip.recv_short_from(0, 10);
            assert_eq!(&b10[..], b"ten");
        }
    });
}

#[test]
fn bip_prefetched_cts_overlaps_transfer() {
    // post_cts ahead of recv_long_posted: the sender proceeds while the
    // receiver's clock does other work.
    let (w, net) = pair(NetKind::Myrinet);
    w.run(|env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            bip.send_long(1, 7, Bytes::from(vec![9u8; 50_000]));
        } else {
            bip.post_cts(0, 7);
            // Simulate local work while the LANai receives.
            madsim_net::time::advance(madsim_net::time::VDuration::from_micros(200));
            let mut buf = vec![0u8; 50_000];
            bip.recv_long_posted(0, 7, &mut buf);
            assert!(buf.iter().all(|&b| b == 9));
        }
    });
}

// ---------------- TCP ----------------

#[test]
fn tcp_full_duplex_streams_do_not_interfere() {
    let (w, net) = pair(NetKind::Ethernet);
    w.run(|env| {
        let tcp = TcpStack::new(env.adapter_on(net).unwrap());
        let peer = 1 - env.id();
        let mut c = tcp.connect(peer, 9);
        let mine = vec![env.id() as u8; 5_000];
        let mut theirs = vec![0u8; 5_000];
        c.send(&mine);
        c.recv_exact(&mut theirs);
        assert!(theirs.iter().all(|&b| b == peer as u8));
    });
}

#[test]
fn tcp_many_small_writes_reassemble() {
    let (w, net) = pair(NetKind::Ethernet);
    w.run(|env| {
        let tcp = TcpStack::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            let mut c = tcp.connect(1, 1);
            for i in 0..100u8 {
                c.send(&[i, i, i]);
            }
        } else {
            let mut c = tcp.connect(0, 1);
            let mut buf = vec![0u8; 300];
            c.recv_exact(&mut buf);
            for (i, chunk) in buf.chunks(3).enumerate() {
                assert!(chunk.iter().all(|&b| b == i as u8));
            }
        }
    });
}

#[test]
fn tcp_vectored_send_is_one_wire_unit() {
    let (w, net) = pair(NetKind::Ethernet);
    let times = w.run(|env| {
        let tcp = TcpStack::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            let mut c = tcp.connect(1, 1);
            let parts: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 100]).collect();
            let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
            c.send_vectored(&refs);
            0.0
        } else {
            let mut c = tcp.connect(0, 1);
            let mut buf = vec![0u8; 1000];
            c.recv_exact(&mut buf);
            madsim_net::time::now().as_micros_f64()
        }
    });
    // One latency, not ten: connect(60) + 60 + 1000 bytes * 0.0851.
    let expected = 60.0 + 60.0 + 1000.0 * 0.0851;
    assert!(
        (times[1] - expected).abs() < 2.0,
        "vectored send cost {} expected ~{expected}",
        times[1]
    );
}

// ---------------- VIA ----------------

#[test]
fn via_window_stress_with_reposting() {
    // VIA drops (here: panics) on un-posted receives, so the sender must
    // respect the window: batches of 8, acknowledged batch-by-batch on the
    // reverse direction of the same VI.
    const BATCH: u32 = 8;
    const BATCHES: u32 = 25;
    let (w, net) = pair(NetKind::ViaSan);
    w.run(|env| {
        let via = Via::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            let mut vi = via.open_vi(1, 1);
            for _ in 0..BATCH {
                vi.post_recv(64);
            }
            env.barrier();
            let mut expect = 0u32;
            for _ in 0..BATCHES {
                for _ in 0..BATCH {
                    let msg = vi.recv();
                    assert_eq!(u32::from_le_bytes(msg[..4].try_into().unwrap()), expect);
                    expect += 1;
                    vi.post_recv(64);
                }
                vi.send(b"ackd"); // consumes one of the sender's posts
            }
        } else {
            let mut vi = via.open_vi(0, 1);
            for _ in 0..2 {
                vi.post_recv(8);
            }
            env.barrier();
            let mut i = 0u32;
            for _ in 0..BATCHES {
                for _ in 0..BATCH {
                    vi.send(&i.to_le_bytes());
                    i += 1;
                }
                let ack = vi.recv();
                assert_eq!(&ack[..], b"ackd");
                vi.post_recv(8);
            }
        }
    });
}

#[test]
fn via_exact_capacity_fit_is_accepted() {
    let (w, net) = pair(NetKind::ViaSan);
    w.run(|env| {
        let via = Via::new(env.adapter_on(net).unwrap());
        if env.id() == 1 {
            let mut vi = via.open_vi(0, 2);
            vi.post_recv(128);
            env.barrier();
            let got = vi.recv();
            assert_eq!(got.len(), 128);
        } else {
            let mut vi = via.open_vi(1, 2);
            vi.post_recv(128);
            env.barrier();
            vi.send(&[7u8; 128]);
        }
    });
}

// ---------------- SBP ----------------

#[test]
fn sbp_tx_pool_exhaustion_blocks_until_release() {
    let (w, net) = pair(NetKind::Ethernet);
    w.run(|env| {
        if env.id() != 0 {
            return;
        }
        let sbp = Sbp::new(env.adapter_on(net).unwrap());
        // Drain the pool.
        let held: Vec<_> = (0..SBP_POOL_SIZE).map(|_| sbp.obtain_tx()).collect();
        assert_eq!(sbp.tx_available(), 0);
        // A blocked obtain completes once a buffer is dropped.
        let sbp2 = sbp.clone();
        let h = env.spawn_thread(move || {
            let _b = sbp2.obtain_tx();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!h.is_finished(), "obtain should be blocked on empty pool");
        drop(held);
        assert!(h.join().unwrap());
    });
}

#[test]
fn sbp_messages_from_two_sources_demultiplex() {
    let mut b = WorldBuilder::new(3);
    let net = b.network("eth0", NetKind::Ethernet, &[0, 1, 2]);
    let w = b.build();
    w.run(|env| {
        let sbp = Sbp::new(env.adapter_on(net).unwrap());
        if env.id() < 2 {
            let mut buf = sbp.obtain_tx();
            buf.fill(&[env.id() as u8; 32]);
            sbp.send(2, 1, buf);
        } else {
            let a = sbp.recv_from(0, 1);
            assert!(a.iter().all(|&b| b == 0));
            let b2 = sbp.recv_from(1, 1);
            assert!(b2.iter().all(|&b| b == 1));
        }
    });
}

// ---------------- SISCI ----------------

#[test]
fn sisci_independent_segments_do_not_interfere() {
    let (w, net) = pair(NetKind::Sci);
    w.run(|env| {
        let sisci = Sisci::new(env.adapter_on(net).unwrap());
        if env.id() == 1 {
            let seg_a = sisci.create_segment(1, 256);
            let seg_b = sisci.create_segment(2, 256);
            seg_a.wait_flag_ge(0, 1);
            seg_b.wait_flag_ge(0, 1);
            let mut a = [0u8; 4];
            let mut b = [0u8; 4];
            seg_a.read(8, &mut a);
            seg_b.read(8, &mut b);
            assert_eq!(&a, b"AAAA");
            assert_eq!(&b, b"BBBB");
        } else {
            let ra = sisci.connect(1, 1);
            let rb = sisci.connect(1, 2);
            let vb = rb.write(8, b"BBBB");
            rb.write_flag(0, 1, vb);
            let va = ra.write(8, b"AAAA");
            ra.write_flag(0, 1, va);
        }
    });
}

#[test]
fn sisci_wait_flag_ge_val_returns_first_satisfying_write() {
    let (w, net) = pair(NetKind::Sci);
    w.run(|env| {
        let sisci = Sisci::new(env.adapter_on(net).unwrap());
        if env.id() == 1 {
            let seg = sisci.create_segment(3, 64);
            env.barrier(); // both flags written before we look
            let (v, _) = seg.wait_flag_ge_val(0, 5);
            // The first write with value >= 5 was 10 (writes were 3, 10).
            assert_eq!(v, 10);
        } else {
            let seg = sisci.connect(1, 3);
            seg.write_flag(0, 3, madsim_net::VTime::ZERO);
            seg.write_flag(0, 10, madsim_net::VTime::ZERO);
            env.barrier();
        }
    });
}

#[test]
fn sisci_dma_and_pio_can_mix_on_one_segment() {
    let (w, net) = pair(NetKind::Sci);
    w.run(|env| {
        let sisci = Sisci::new(env.adapter_on(net).unwrap());
        if env.id() == 1 {
            let seg = sisci.create_segment(4, 1 << 16);
            seg.wait_flag_ge(0, 2);
            let mut pio = vec![0u8; 16];
            let mut dma = vec![0u8; 32_768];
            seg.read(16, &mut pio);
            seg.read(1024, &mut dma);
            assert!(pio.iter().all(|&b| b == 1));
            assert!(dma.iter().all(|&b| b == 2));
        } else {
            let seg = sisci.connect(1, 4);
            let v1 = seg.write(16, &[1u8; 16]);
            let v2 = seg.dma_write(1024, &[2u8; 32_768]);
            seg.write_flag(0, 2, v1.max(v2));
        }
    });
}

// ---------------- world / bus plumbing ----------------

#[test]
fn pci_of_reaches_every_node() {
    use madsim_net::{BusDir, BusKind, VDuration, VTime};
    let mut b = WorldBuilder::new(3);
    let net = b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    let w = b.build();
    w.run(|env| {
        if env.id() != 0 {
            return;
        }
        let a = env.adapter_on(net).unwrap();
        // Reserve on node 2's bus from node 0's context; node 2's own
        // transfer then queues behind it.
        let e1 = a.pci_of(2).transfer(
            BusKind::Dma,
            BusDir::Inbound,
            VTime::ZERO,
            VDuration::from_micros(100),
        );
        assert_eq!(e1.as_nanos(), 100_000);
        let e2 = a.pci_of(2).transfer(
            BusKind::Dma,
            BusDir::Outbound,
            VTime::ZERO,
            VDuration::from_micros(10),
        );
        assert_eq!(e2.as_nanos(), 110_000, "serialized behind the first");
        // Node 0's own bus is unaffected.
        let e3 = a.pci().transfer(
            BusKind::Dma,
            BusDir::Outbound,
            VTime::ZERO,
            VDuration::from_micros(10),
        );
        assert_eq!(e3.as_nanos(), 10_000);
    });
}

#[test]
fn members_of_and_networks_report_topology() {
    let mut b = WorldBuilder::new(4);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[1, 2, 3]);
    let w = b.build();
    w.run(|env| {
        assert_eq!(env.members_of("sci0"), Some(vec![0, 1]));
        assert_eq!(env.members_of("myr0"), Some(vec![1, 2, 3]));
        assert_eq!(env.members_of("nope"), None);
        let nets = env.networks();
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0], ("sci0".to_string(), NetKind::Sci));
    });
}

#[test]
fn world_run_returns_results_in_node_order() {
    let mut b = WorldBuilder::new(4);
    b.network("eth0", NetKind::Ethernet, &[0, 1, 2, 3]);
    let w = b.build();
    let out = w.run(|env| env.id() * 10);
    assert_eq!(out, vec![0, 10, 20, 30]);
}

#[test]
fn bip_long_messages_pipeline_with_early_cts() {
    // Two back-to-back long messages: the second CTS posted before the
    // first is consumed keeps both flights independent.
    let (w, net) = pair(NetKind::Myrinet);
    w.run(|env| {
        let bip = Bip::new(env.adapter_on(net).unwrap());
        if env.id() == 0 {
            bip.send_long(1, 1, Bytes::from(vec![1u8; 30_000]));
            bip.send_long(1, 1, Bytes::from(vec![2u8; 30_000]));
        } else {
            bip.post_cts(0, 1);
            bip.post_cts(0, 1);
            let mut a = vec![0u8; 30_000];
            let mut b2 = vec![0u8; 30_000];
            bip.recv_long_posted(0, 1, &mut a);
            bip.recv_long_posted(0, 1, &mut b2);
            assert!(a.iter().all(|&x| x == 1));
            assert!(b2.iter().all(|&x| x == 2));
        }
    });
}
