//! A real MPI workload over the `ch_mad` device (paper §5.3.1): 1-D heat
//! diffusion with halo exchange and a global residual reduction.
//!
//! Each rank owns a block of a 1-D rod; every iteration exchanges one-cell
//! halos with its neighbours (`sendrecv`, which Madeleine maps onto the
//! short-message paths) and applies the explicit diffusion stencil; every
//! few iterations an `allreduce` checks global convergence.
//!
//! Run: `cargo run -p mad-examples --example mpi_stencil`

use mad_mpi::{Mpi, ReduceOp};
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};

const CELLS_PER_RANK: usize = 256;
const ALPHA: f64 = 0.25;
const TAG_LEFT: i32 = 10;
const TAG_RIGHT: i32 = 11;

fn main() {
    let ranks = 4;
    let mut b = WorldBuilder::new(ranks);
    b.network("myr0", NetKind::Myrinet, &(0..ranks).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("mpi", "myr0", Protocol::Bip);

    let residuals = world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "mpi");
        let (rank, size) = (mpi.rank(), mpi.size());

        // Initial condition: a hot spike in rank 0's block.
        let mut u = vec![0.0f64; CELLS_PER_RANK + 2]; // plus halo cells
        if rank == 0 {
            u[1] = 1000.0;
        }

        let mut last_residual = f64::INFINITY;
        for step in 0..200 {
            // Halo exchange with neighbours (non-periodic rod).
            let left = rank.checked_sub(1);
            let right = if rank + 1 < size {
                Some(rank + 1)
            } else {
                None
            };
            let mut halo = [0u8; 8];
            if let Some(l) = left {
                let st = mpi.sendrecv(
                    l,
                    TAG_LEFT,
                    &u[1].to_le_bytes(),
                    Some(l),
                    Some(TAG_RIGHT),
                    &mut halo,
                );
                assert_eq!(st.len, 8);
                u[0] = f64::from_le_bytes(halo);
            }
            if let Some(r) = right {
                let st = mpi.sendrecv(
                    r,
                    TAG_RIGHT,
                    &u[CELLS_PER_RANK].to_le_bytes(),
                    Some(r),
                    Some(TAG_LEFT),
                    &mut halo,
                );
                assert_eq!(st.len, 8);
                u[CELLS_PER_RANK + 1] = f64::from_le_bytes(halo);
            }

            // Explicit diffusion step.
            let mut next = u.clone();
            let mut local_delta = 0.0f64;
            for i in 1..=CELLS_PER_RANK {
                // Reflecting boundaries at the rod ends.
                let lval = if i == 1 && left.is_none() {
                    u[1]
                } else {
                    u[i - 1]
                };
                let rval = if i == CELLS_PER_RANK && right.is_none() {
                    u[CELLS_PER_RANK]
                } else {
                    u[i + 1]
                };
                next[i] = u[i] + ALPHA * (lval - 2.0 * u[i] + rval);
                local_delta += (next[i] - u[i]).abs();
            }
            u = next;

            if step % 20 == 19 {
                let total = mpi.allreduce(ReduceOp::Sum, &[local_delta])[0];
                assert!(
                    total <= last_residual + 1e-9,
                    "diffusion must not diverge: {total} > {last_residual}"
                );
                last_residual = total;
            }
        }

        // Heat is conserved (reflecting boundaries).
        let local_heat: f64 = u[1..=CELLS_PER_RANK].iter().sum();
        let total_heat = mpi.allreduce(ReduceOp::Sum, &[local_heat])[0];
        assert!(
            (total_heat - 1000.0).abs() < 1e-6,
            "heat leaked: {total_heat}"
        );

        if rank == 0 {
            println!(
                "[rank 0] 200 steps on {} ranks; final residual {:.4}; virtual time {}",
                size,
                last_residual,
                time::now()
            );
        }
        last_residual
    });

    assert!(residuals[0].is_finite());
    println!("mpi_stencil: OK");
}
