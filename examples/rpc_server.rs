//! An RPC service over Nexus/Madeleine II (paper §5.3.2).
//!
//! The motivating workload of the paper's introduction: a multithreaded
//! runtime whose nodes invoke services on each other by *remote service
//! request*. Node 0 is a client issuing marshaled requests; the other
//! nodes run a small compute service (dot products over dynamically-sized
//! vectors) and reply by RSR.
//!
//! Run: `cargo run -p mad-examples --example rpc_server`

use mad_nexus::{GetBuffer, Nexus, PutBuffer};
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};
use parking_lot::Mutex;
use std::sync::Arc;

const H_DOT: u32 = 1;
const H_REPLY: u32 = 2;
const H_SHUTDOWN: u32 = 3;

fn main() {
    let nodes = 4;
    let mut b = WorldBuilder::new(nodes);
    b.network("sci0", NetKind::Sci, &(0..nodes).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("rpc", "sci0", Protocol::Sisci);

    world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let nx = Nexus::new(Arc::clone(mad.channel("rpc")));

        if env.id() == 0 {
            client(&nx, env.n_nodes());
        } else {
            server(&nx);
        }
    });
    println!("rpc_server: OK");
}

fn client(nx: &Arc<Nexus>, nodes: usize) {
    let results: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = Arc::clone(&results);
    nx.register(H_REPLY, move |_, rsr| {
        let mut g = GetBuffer::new(&rsr.data);
        r2.lock().push(g.get_f64());
    });

    // Issue one dot-product request per server, with different vector sizes.
    for (k, &server) in (1..nodes).collect::<Vec<_>>().iter().enumerate() {
        let n = 1_000 * (k + 1);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|_| 2.0).collect();
        let mut req = PutBuffer::new();
        req.put_u32(n as u32);
        for v in xs.iter().chain(ys.iter()) {
            req.put_f64(*v);
        }
        nx.send_rsr(server, H_DOT, req.as_slice());
    }

    // Collect all replies.
    for _ in 1..nodes {
        nx.handle_one();
    }
    let results = results.lock();
    println!(
        "[client] {} replies in; virtual time {}",
        results.len(),
        time::now()
    );
    // dot(xs, ys) = 2 * sum(0..n) = n*(n-1)
    for r in results.iter() {
        let n = ((1.0 + (1.0 + 4.0 * r).sqrt()) / 2.0).round();
        assert!((r - n * (n - 1.0)).abs() < 1e-6, "bad dot product {r}");
    }

    // Shut the servers down.
    for server in 1..nodes {
        nx.send_rsr(server, H_SHUTDOWN, &[]);
    }
}

fn server(nx: &Arc<Nexus>) {
    nx.register(H_DOT, |nx, rsr| {
        let mut g = GetBuffer::new(&rsr.data);
        let n = g.get_u32() as usize;
        let xs: Vec<f64> = (0..n).map(|_| g.get_f64()).collect();
        let ys: Vec<f64> = (0..n).map(|_| g.get_f64()).collect();
        let dot: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let mut reply = PutBuffer::new();
        reply.put_f64(dot);
        nx.send_rsr(rsr.src, H_REPLY, reply.as_slice());
    });
    nx.register(H_SHUTDOWN, |_, _| {});

    // Serve until the shutdown RSR.
    loop {
        if nx.handle_one() == H_SHUTDOWN {
            break;
        }
    }
}
