//! Quickstart: the paper's Fig. 1 example, verbatim.
//!
//! A sender transmits an array whose size the receiver does not know: the
//! 4-byte size is packed `(send_CHEAPER, receive_EXPRESS)` so the receiver
//! can read it immediately and allocate, then the array itself goes
//! `(send_CHEAPER, receive_CHEAPER)` so the library picks the fastest bulk
//! path (here: SISCI's dual-buffered PIO pipeline).
//!
//! Run: `cargo run -p mad-examples --example quickstart`

use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};

fn main() {
    // A two-node SCI cluster.
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    let world = b.build();
    let config = Config::one("main", "sci0", Protocol::Sisci);

    world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let channel = mad.channel("main");

        if env.id() == 0 {
            // ---- sending side (paper Fig. 1, left) ----
            let dyn_array: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
            let size = (dyn_array.len() as u32).to_le_bytes();

            let mut msg = channel.begin_packing(1);
            msg.pack(&size, SendMode::Cheaper, RecvMode::Express);
            msg.pack(&dyn_array, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            println!(
                "[node 0] sent {} bytes; virtual clock: {}",
                dyn_array.len(),
                time::now()
            );
        } else {
            // ---- receiving side (paper Fig. 1, right) ----
            let mut msg = channel.begin_unpacking();
            println!("[node 1] incoming message from node {}", msg.src());

            // The size must be EXPRESS: it steers the next unpack.
            let mut size = [0u8; 4];
            msg.unpack_express(&mut size, SendMode::Cheaper);
            let n = u32::from_le_bytes(size) as usize;

            // Now the destination can be allocated; CHEAPER lets the
            // library defer/stream the extraction optimally.
            let mut dyn_array = vec![0u8; n];
            msg.unpack(&mut dyn_array, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();

            assert!(dyn_array
                .iter()
                .enumerate()
                .all(|(i, &b)| b == (i % 251) as u8));
            println!(
                "[node 1] received {} bytes intact; one-way virtual time: {}",
                n,
                time::now()
            );
        }
    });

    println!("quickstart: OK");
}
