//! Clusters of clusters (paper §6): an SCI cluster and a Myrinet cluster
//! bridged by a dual-homed gateway, communicating transparently through a
//! virtual channel.
//!
//! Topology (the paper's §6.2 testbed):
//!
//! ```text
//!   [0] [1] --SCI-- [2] --Myrinet-- [3] [4]
//!                  gateway
//! ```
//!
//! Node 0 streams messages to node 4; the gateway's dual-buffered pipeline
//! forwards MTU-sized self-described fragments. The run prints the
//! achieved inter-cluster bandwidth for several packet sizes — the
//! experiment behind Fig. 10.
//!
//! Run: `cargo run -p mad-examples --example cluster_of_clusters`

use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::perf::mibps;
use madsim_net::time::{self, VDuration};
use madsim_net::{NetKind, WorldBuilder};

fn main() {
    for &packet in &[8 * 1024usize, 32 * 1024, 128 * 1024] {
        let bw = run_once(packet, 1 << 20);
        println!(
            "inter-cluster SCI -> Myrinet, {:>3} kB packets: {:>6.2} MiB/s",
            packet / 1024,
            bw
        );
    }
    println!("cluster_of_clusters: OK");
}

fn run_once(packet: usize, msg_len: usize) -> f64 {
    let mut b = WorldBuilder::new(5);
    b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    b.network("myr0", NetKind::Myrinet, &[2, 3, 4]);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);

    let times = world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("wide", &["sci", "myr"], packet);
        // Gateways spawn their forwarding pipelines; end nodes open the
        // virtual channel. Both are no-ops on non-participating nodes.
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);

        let mut out = 0.0;
        if env.id() == 0 {
            let vc = vc.expect("node 0 is an endpoint");
            let payload = vec![0xABu8; msg_len];
            let mut msg = vc.begin_packing(4);
            msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else if env.id() == 4 {
            let vc = vc.expect("node 4 is an endpoint");
            let mut buf = vec![0u8; msg_len];
            let mut msg = vc.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(buf.iter().all(|&b| b == 0xAB));
            out = time::now().as_micros_f64();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
        out
    });
    mibps(msg_len, VDuration::from_micros_f64(times[4]))
}
