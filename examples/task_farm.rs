//! A PM2-style task farm (the paper's motivating application shape):
//! a master distributes work chunks by lightweight RPC; workers compute
//! and reply; the master reduces.
//!
//! Run: `cargo run -p mad-examples --example task_farm`

use mad_pm2::Pm2;
use madeleine::{Config, Madeleine, Protocol};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

const SVC_SUM_SQUARES: u32 = 1;
const SVC_SHUTDOWN: u32 = 2;

fn main() {
    let nodes = 5;
    let mut b = WorldBuilder::new(nodes);
    b.network("myr0", NetKind::Myrinet, &(0..nodes).collect::<Vec<_>>());
    let world = b.build();
    let config = Config::one("pm2", "myr0", Protocol::Bip);

    world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let pm2 = Pm2::new(Arc::clone(mad.channel("pm2")));

        if env.id() == 0 {
            // Master: farm out ranges [k*N, (k+1)*N) round-robin.
            const CHUNK: u64 = 50_000;
            const CHUNKS: u64 = 12;
            let workers = env.n_nodes() - 1;
            let mut total: u128 = 0;
            for k in 0..CHUNKS {
                let worker = 1 + (k as usize % workers);
                let mut args = [0u8; 16];
                args[..8].copy_from_slice(&(k * CHUNK).to_le_bytes());
                args[8..].copy_from_slice(&((k + 1) * CHUNK).to_le_bytes());
                let reply = pm2.rpc(worker, SVC_SUM_SQUARES, &args);
                total += u128::from_le_bytes(reply[..16].try_into().unwrap());
            }
            // Closed form: sum of i^2 for i < n = n(n-1)(2n-1)/6.
            let n = (CHUNKS * CHUNK) as u128;
            let expect = n * (n - 1) * (2 * n - 1) / 6;
            assert_eq!(total, expect, "farm result mismatch");
            println!(
                "[master] sum of squares below {n} = {total} (verified); \
                 virtual time {}",
                time::now()
            );
            for w in 1..env.n_nodes() {
                pm2.async_rpc(w, SVC_SHUTDOWN, &[]);
            }
        } else {
            pm2.register(SVC_SUM_SQUARES, |_, _, args| {
                let lo = u64::from_le_bytes(args[..8].try_into().unwrap());
                let hi = u64::from_le_bytes(args[8..16].try_into().unwrap());
                let sum: u128 = (lo..hi).map(|i| (i as u128) * (i as u128)).sum();
                sum.to_le_bytes().to_vec()
            });
            let done = Arc::new(parking_lot::Mutex::new(false));
            let d2 = Arc::clone(&done);
            pm2.register(SVC_SHUTDOWN, move |_, _, _| {
                *d2.lock() = true;
                Vec::new()
            });
            while !*done.lock() {
                pm2.serve(1);
            }
        }
    });
    println!("task_farm: OK");
}
