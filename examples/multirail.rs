//! Multi-protocol sessions (paper §2.1): one application, two networks,
//! explicit per-message network selection.
//!
//! The cluster has both SCI and Myrinet adapters in every node. The
//! application opens one channel per network and routes traffic by what
//! each fabric is best at — SCI's ultra-low latency for control messages,
//! Myrinet's superior bulk bandwidth for data — "the user application can
//! dynamically switch from one network to another, according to its
//! communication needs."
//!
//! Run: `cargo run -p mad-examples --example multirail`

use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::time::{self, VDuration};
use madsim_net::{perf::mibps, NetKind, WorldBuilder};

fn main() {
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    b.network("myr0", NetKind::Myrinet, &[0, 1]);
    let world = b.build();
    let config =
        Config::one("control", "sci0", Protocol::Sisci).with_channel("data", "myr0", Protocol::Bip);

    world.run(|env| {
        let mad = Madeleine::init(&env, &config);
        let control = mad.channel("control");
        let data = mad.channel("data");

        const ROUNDS: usize = 8;
        const BULK: usize = 512 * 1024;

        if env.id() == 0 {
            for round in 0..ROUNDS as u32 {
                // Tiny control message over SCI: announce the round.
                let t0 = time::now();
                let round_bytes = round.to_le_bytes();
                let mut msg = control.begin_packing(1);
                msg.pack(&round_bytes, SendMode::Cheaper, RecvMode::Express);
                msg.end_packing();
                let control_cost = time::now().saturating_since(t0);

                // Bulk payload over Myrinet.
                let payload = vec![round as u8; BULK];
                let mut msg = data.begin_packing(1);
                msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();

                if round == 0 {
                    println!(
                        "[node 0] control send cost {} (SCI short path)",
                        control_cost
                    );
                }
            }
        } else {
            let mut total_bytes = 0usize;
            let t0 = time::now();
            for _ in 0..ROUNDS {
                // Control first: EXPRESS, sub-5µs class.
                let mut msg = control.begin_unpacking();
                let mut round = [0u8; 4];
                msg.unpack_express(&mut round, SendMode::Cheaper);
                msg.end_unpacking();

                // Then the bulk transfer on the data rail.
                let mut payload = vec![0u8; BULK];
                let mut msg = data.begin_unpacking();
                msg.unpack(&mut payload, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert!(payload
                    .iter()
                    .all(|&b| b == u32::from_le_bytes(round) as u8));
                total_bytes += BULK;
            }
            let elapsed = time::now().saturating_since(t0);
            println!(
                "[node 1] {} rounds, {:.1} MiB over the data rail at {:.1} MiB/s \
                 while control ran on SCI",
                ROUNDS,
                total_bytes as f64 / (1 << 20) as f64,
                mibps(total_bytes, elapsed)
            );
            // The Myrinet rail must deliver near its native bulk bandwidth.
            let bw = mibps(total_bytes, elapsed);
            assert!(bw > 90.0, "data rail underperforming: {bw:.1} MiB/s");
        }
    });

    let _ = VDuration::ZERO;
    println!("multirail: OK");
}
