//! Example applications live as cargo examples of this package; see `quickstart.rs` and friends in this directory.
