//! The paper's future-work features in action: adaptive
//! polling/interruption (the Marcel integration) and gateway bandwidth
//! control (the conclusion's open question).
//!
//! Part 1 measures the one-way latency of a message that arrives while the
//! receiver is blocked, under the three network-interaction policies.
//! Part 2 forwards a message across a gateway while sweeping the inbound
//! admission limit.
//!
//! Run: `cargo run -p mad-examples --example adaptive_io`

use mad_gateway::{Gateway, GatewayConfig, VirtualChannel, VirtualChannelSpec};
use madeleine::{Config, Madeleine, PollPolicy, Protocol, RecvMode, SendMode};
use madsim_net::time;
use madsim_net::{NetKind, WorldBuilder};

fn main() {
    println!("-- network interaction policies (receiver blocked, sender slow) --");
    for (name, policy) in [
        ("spin      ", PollPolicy::Spin),
        ("interrupt ", PollPolicy::interrupt()),
        ("adaptive  ", PollPolicy::adaptive()),
    ] {
        let t = latency_under(policy);
        println!("  {name} one-way latency: {t:>7.2} us");
    }

    println!("\n-- gateway inbound admission control (200 kB across clusters) --");
    for limit in [None, Some(100.0), Some(40.0), Some(10.0)] {
        let t = forward_with_limit(limit);
        let label = match limit {
            None => "unlimited".to_string(),
            Some(l) => format!("{l:>5.0} MiB/s"),
        };
        println!(
            "  inbound {label}: completion {t:>9.1} us ({:.2} MiB/s)",
            200_000.0 / t / 1.048576
        );
    }
    println!("adaptive_io: OK");
}

fn latency_under(policy: PollPolicy) -> f64 {
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "sci0", Protocol::Sisci).with_poll_policy(policy);
    let out = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        if env.id() == 0 {
            // Ensure the receiver blocks (and, under the interrupt
            // policies, parks) before the message leaves.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut m = ch.begin_packing(1);
            m.pack(&[1u8; 64], SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
            0.0
        } else {
            let mut buf = [0u8; 64];
            let mut m = ch.begin_unpacking();
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
            time::now().as_micros_f64()
        }
    });
    out[1]
}

fn forward_with_limit(limit: Option<f64>) -> f64 {
    let mut b = WorldBuilder::new(3);
    b.network("myr0", NetKind::Myrinet, &[0, 1]);
    b.network("sci0", NetKind::Sci, &[1, 2]);
    let world = b.build();
    let config =
        Config::one("myr", "myr0", Protocol::Bip).with_channel("sci", "sci0", Protocol::Sisci);
    let out = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["myr", "sci"], 16384);
        let gw = Gateway::spawn_with(
            &env,
            &mad,
            &config,
            &spec,
            GatewayConfig {
                inbound_limit_mibps: limit,
                depth: 2,
            },
        );
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        let mut t = 0.0;
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let data = vec![0x42u8; 200_000];
            let mut m = vc.begin_packing(2);
            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        } else if env.id() == 2 {
            let vc = vc.expect("endpoint");
            let mut buf = vec![0u8; 200_000];
            let mut m = vc.begin_unpacking();
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
            assert!(buf.iter().all(|&b| b == 0x42));
            t = time::now().as_micros_f64();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
        t
    });
    out[2]
}
