//! Cross-crate integration tests: the whole reproduction working together —
//! substrate, Madeleine II, the gateway extension, and the MPI and Nexus
//! layers in one session.

use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
use mad_mpi::Mpi;
use mad_nexus::{GetBuffer, Nexus, PutBuffer};
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

/// Two clusters (SCI {0,1,2}, Myrinet {2,3,4}) with gateway node 2.
fn two_cluster() -> (madsim_net::World, Config, VirtualChannelSpec) {
    let mut b = WorldBuilder::new(5);
    b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    b.network("myr0", NetKind::Myrinet, &[2, 3, 4]);
    let world = b.build();
    let config =
        Config::one("sci", "sci0", Protocol::Sisci).with_channel("myr", "myr0", Protocol::Bip);
    let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
    (world, config, spec)
}

/// MPI spanning two heterogeneous clusters through the gateway: the
/// paper's architecture stack used end to end (MPI -> generic layer ->
/// Generic TM -> real TMs -> simulated NICs, twice, plus forwarding).
#[test]
fn mpi_across_clusters() {
    let (world, config, spec) = two_cluster();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        // End nodes only — the gateway (node 2) just forwards.
        let ranks: Vec<usize> = vec![0, 1, 3, 4];
        if ranks.contains(&env.id()) {
            let vc = vc.expect("endpoint");
            let mpi = Mpi::init_over(Arc::clone(vc.channel()), Some(&ranks));
            assert_eq!(mpi.size(), 4);
            // Cross-cluster point-to-point: rank 0 (node 0, SCI) with
            // rank 3 (node 4, Myrinet).
            if mpi.rank() == 0 {
                let data: Vec<u8> = (0..50_000).map(|i| (i % 249) as u8).collect();
                mpi.send(3, 11, &data);
                let mut back = vec![0u8; 8];
                mpi.recv(Some(3), Some(12), &mut back);
                assert_eq!(&back, b"ack-back");
            } else if mpi.rank() == 3 {
                let mut buf = vec![0u8; 50_000];
                let st = mpi.recv(Some(0), Some(11), &mut buf);
                assert_eq!(st.len, 50_000);
                assert!(buf.iter().enumerate().all(|(i, &b)| b == (i % 249) as u8));
                mpi.send(0, 12, b"ack-back");
            }
            // A collective spanning both clusters.
            mpi.barrier();
            let sum = mpi.allreduce(mad_mpi::ReduceOp::Sum, &[mpi.rank() as f64]);
            assert!((sum[0] - 6.0).abs() < 1e-12); // 0+1+2+3
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// Nexus RSRs crossing the gateway transparently.
#[test]
fn nexus_rpc_across_clusters() {
    let (world, config, spec) = two_cluster();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if env.id() == 0 {
            let vc = vc.expect("endpoint");
            let nx = Nexus::new(Arc::clone(vc.channel()));
            let mut req = PutBuffer::new();
            req.put_str("square").put_f64(12.0);
            nx.register(2, |_, rsr| {
                let mut g = GetBuffer::new(&rsr.data);
                assert_eq!(g.get_f64(), 144.0);
            });
            nx.send_rsr(4, 1, req.as_slice());
            nx.handle_one();
        } else if env.id() == 4 {
            let vc = vc.expect("endpoint");
            let nx = Nexus::new(Arc::clone(vc.channel()));
            nx.register(1, |nx, rsr| {
                let mut g = GetBuffer::new(&rsr.data);
                assert_eq!(g.get_str(), "square");
                let x = g.get_f64();
                let mut reply = PutBuffer::new();
                reply.put_f64(x * x);
                nx.send_rsr(rsr.src, 2, reply.as_slice());
            });
            nx.handle_one();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// Direct channels and the virtual channel coexist in one session.
#[test]
fn direct_and_virtual_traffic_coexist() {
    let (world, config, spec) = two_cluster();
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        // A second pair of channels for direct traffic (the hop channels
        // themselves must stay dedicated to the virtual channel).
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        match env.id() {
            0 => {
                // Cross-cluster on the virtual channel...
                let vc = vc.expect("endpoint");
                let mut m = vc.begin_packing(3);
                m.pack(b"wide", SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            }
            1 => {}
            3 => {
                let vc = vc.expect("endpoint");
                let mut buf = [0u8; 4];
                let mut m = vc.begin_unpacking();
                m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                assert_eq!(&buf, b"wide");
            }
            _ => {}
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// The paper's §2.2 RPC pattern byte-for-byte over every protocol:
/// EXPRESS function-name header steering a CHEAPER dynamic payload.
#[test]
fn rpc_pattern_over_every_protocol() {
    for protocol in [
        Protocol::Sisci,
        Protocol::Bip,
        Protocol::Tcp,
        Protocol::Via,
        Protocol::Sbp,
    ] {
        let mut b = WorldBuilder::new(2);
        let (net, kind) = match protocol {
            Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
            Protocol::Bip => ("myr0", NetKind::Myrinet),
            Protocol::Sisci => ("sci0", NetKind::Sci),
            Protocol::Via => ("san0", NetKind::ViaSan),
        };
        b.network(net, kind, &[0, 1]);
        let world = b.build();
        let config = Config::one("rpc", net, protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("rpc");
            if env.id() == 0 {
                let name = b"matrix_multiply!";
                let arg: Vec<u8> = (0..30_000).map(|i| (i % 127) as u8).collect();
                let hdr_len = (name.len() as u32).to_le_bytes();
                let arg_len = (arg.len() as u32).to_le_bytes();
                let mut m = ch.begin_packing(1);
                m.pack(&hdr_len, SendMode::Cheaper, RecvMode::Express);
                m.pack(name, SendMode::Cheaper, RecvMode::Express);
                m.pack(&arg_len, SendMode::Cheaper, RecvMode::Express);
                m.pack(&arg, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            } else {
                let mut m = ch.begin_unpacking();
                let mut len = [0u8; 4];
                m.unpack_express(&mut len, SendMode::Cheaper);
                let mut name = vec![0u8; u32::from_le_bytes(len) as usize];
                m.unpack_express(&mut name, SendMode::Cheaper);
                assert_eq!(&name, b"matrix_multiply!");
                m.unpack_express(&mut len, SendMode::Cheaper);
                let mut arg = vec![0u8; u32::from_le_bytes(len) as usize];
                m.unpack(&mut arg, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                assert!(arg.iter().enumerate().all(|(i, &b)| b == (i % 127) as u8));
            }
        });
    }
}

/// Zero-copy accounting of the BIP long path: a bulk CHEAPER/CHEAPER
/// transfer performs no generic-layer copies at either end.
#[test]
fn bip_long_path_is_zero_copy() {
    let mut b = WorldBuilder::new(2);
    b.network("myr0", NetKind::Myrinet, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "myr0", Protocol::Bip);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![7u8; 100_000];
        let before = ch.stats().snapshot();
        if env.id() == 0 {
            let mut m = ch.begin_packing(1);
            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        } else {
            let mut buf = vec![0u8; 100_000];
            let mut m = ch.begin_unpacking();
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
        }
        let delta = ch.stats().snapshot().since(&before);
        // Only the 16-byte channel header moves through the short path's
        // static buffers; the 100 kB payload is delivered in place.
        assert!(
            delta.copied_bytes <= 64,
            "BIP long path copied {} bytes on node {}",
            delta.copied_bytes,
            env.id()
        );
    });
}

/// SISCI's receive necessarily copies out of the segment (PIO semantics);
/// the generic layer itself must add nothing on top for CHEAPER/CHEAPER.
#[test]
fn sisci_generic_layer_adds_no_copies() {
    let mut b = WorldBuilder::new(2);
    b.network("sci0", NetKind::Sci, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "sci0", Protocol::Sisci);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let data = vec![9u8; 50_000];
        let before = ch.stats().snapshot();
        if env.id() == 0 {
            let mut m = ch.begin_packing(1);
            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        } else {
            let mut buf = vec![0u8; 50_000];
            let mut m = ch.begin_unpacking();
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
        }
        let delta = ch.stats().snapshot().since(&before);
        assert_eq!(
            delta.copies,
            0,
            "generic layer performed {} copies on node {}",
            delta.copies,
            env.id()
        );
    });
}

/// The tentpole contract of the zero-copy send path: a 1 MiB
/// CHEAPER/CHEAPER transfer on an aggregating protocol performs **zero**
/// generic-layer copies (the internal header is built directly in pooled
/// memory, the body is read in place) and the commit flushes through the
/// TM's native scatter/gather on both TCP and SISCI.
#[test]
fn bulk_cheaper_transfer_is_zero_copy_and_gathers() {
    for (protocol, net, kind) in [
        (Protocol::Tcp, "eth0", NetKind::Ethernet),
        (Protocol::Sisci, "sci0", NetKind::Sci),
    ] {
        let mut b = WorldBuilder::new(2);
        b.network(net, kind, &[0, 1]);
        let world = b.build();
        let config = Config::one("ch", net, protocol);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            const LEN: usize = 1 << 20;
            let before = ch.stats().snapshot();
            if env.id() == 0 {
                let data: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
                let mut m = ch.begin_packing(1);
                m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
                let delta = ch.stats().snapshot().since(&before);
                assert_eq!(
                    delta.copied_bytes, 0,
                    "{protocol:?}: generic layer copied on the send side"
                );
                assert!(
                    delta.gathers >= 1,
                    "{protocol:?}: commit did not use the TM's native gather"
                );
                assert!(
                    delta.borrowed_bytes >= LEN as u64,
                    "{protocol:?}: body was not handed over by reference"
                );
            } else {
                let mut buf = vec![0u8; LEN];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                assert!(buf.iter().enumerate().all(|(i, &v)| v == (i % 251) as u8));
                let delta = ch.stats().snapshot().since(&before);
                assert_eq!(
                    delta.copies, 0,
                    "{protocol:?}: generic layer copied on the receive side"
                );
            }
        });
    }
}

/// Steady-state ping-pong recycles the per-channel pool: after the first
/// message warms the free-list, every header checkout is a hit.
#[test]
fn steady_state_ping_pong_pool_hit_rate() {
    let mut b = WorldBuilder::new(2);
    b.network("eth0", NetKind::Ethernet, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "eth0", Protocol::Tcp);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let payload = [0x5au8; 256];
        for _ in 0..50 {
            if env.id() == 0 {
                let mut m = ch.begin_packing(1);
                m.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
                let mut echo = [0u8; 256];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                assert_eq!(echo, payload);
            } else {
                let mut echo = [0u8; 256];
                let mut m = ch.begin_unpacking();
                m.unpack(&mut echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_unpacking();
                let mut m = ch.begin_packing(0);
                m.pack(&echo, SendMode::Cheaper, RecvMode::Cheaper);
                m.end_packing();
            }
        }
        let stats = ch.stats();
        assert!(stats.pool_hits() > 0, "pool never recycled a slab");
        assert!(
            stats.pool_hit_rate() >= 0.9,
            "steady-state hit rate {:.3} below 0.9 on node {}",
            stats.pool_hit_rate(),
            env.id()
        );
    });
}

/// Concurrency smoke over a static-buffer protocol: both nodes drive their
/// channel pools simultaneously (header checkouts + VIA registered-buffer
/// checkouts in flight both ways), data stays intact, and the pools settle
/// into reuse.
#[test]
fn full_duplex_static_buffer_traffic_reuses_pool() {
    let mut b = WorldBuilder::new(2);
    b.network("san0", NetKind::ViaSan, &[0, 1]);
    let world = b.build();
    let config = Config::one("ch", "san0", Protocol::Via);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("ch");
        let peer = 1 - env.id();
        const ROUNDS: usize = 10;
        // Fire all sends first: traffic crosses in both directions at once.
        for r in 0..ROUNDS {
            let data: Vec<u8> = (0..5000).map(|i| ((i + r) % 241) as u8).collect();
            let mut m = ch.begin_packing(peer);
            m.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_packing();
        }
        for r in 0..ROUNDS {
            let mut buf = vec![0u8; 5000];
            let mut m = ch.begin_unpacking();
            m.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            m.end_unpacking();
            assert!(buf
                .iter()
                .enumerate()
                .all(|(i, &v)| v == ((i + r) % 241) as u8));
        }
        let stats = ch.stats();
        let checkouts = stats.pool_hits() + stats.pool_misses();
        assert!(checkouts >= ROUNDS as u64, "pool saw no traffic");
        assert!(
            stats.pool_hit_rate() >= 0.8,
            "full-duplex hit rate {:.3} on node {}",
            stats.pool_hit_rate(),
            env.id()
        );
    });
}

/// The whole tower at once: PM2 RPC over MPI-carried... no — PM2 and MPI
/// and Nexus coexisting in one session on separate channels, while a
/// virtual channel forwards across clusters. One node participates in all
/// of them simultaneously.
#[test]
fn all_layers_coexist_in_one_session() {
    use mad_pm2::Pm2;
    let mut b = WorldBuilder::new(5);
    b.network("sci0", NetKind::Sci, &[0, 1, 2]);
    b.network("myr0", NetKind::Myrinet, &[2, 3, 4]);
    let world = b.build();
    let config = Config::one("sci", "sci0", Protocol::Sisci)
        .with_channel("myr", "myr0", Protocol::Bip)
        .with_channel("sci-apps", "sci0", Protocol::Sisci)
        .with_channel("myr-apps", "myr0", Protocol::Bip);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], 8192);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);

        // Layer 1: MPI among the SCI cluster (local channel).
        if [0usize, 1].contains(&env.id()) {
            let mpi = Mpi::init_over(Arc::clone(mad.channel("sci-apps")), Some(&[0, 1]));
            let sum = mpi.allreduce(mad_mpi::ReduceOp::Sum, &[1.0]);
            assert_eq!(sum[0], 2.0);
        }
        // Layer 2: PM2 among the Myrinet cluster (local channel).
        if [3usize, 4].contains(&env.id()) {
            let pm2 = Pm2::new(Arc::clone(mad.channel("myr-apps")));
            if env.id() == 3 {
                pm2.register(1, |_, _, args| args.to_vec());
                pm2.serve(1);
            } else {
                let echo = pm2.rpc(3, 1, b"echo");
                assert_eq!(&echo[..], b"echo");
            }
        }
        // Layer 3: Nexus across the clusters on the virtual channel.
        if env.id() == 0 {
            let nx = Nexus::new(Arc::clone(vc.expect("endpoint").channel()));
            let mut req = PutBuffer::new();
            req.put_u32(7).put_str("cross-cluster");
            nx.send_rsr(4, 1, req.as_slice());
        } else if env.id() == 4 {
            let nx = Nexus::new(Arc::clone(vc.expect("endpoint").channel()));
            nx.register(1, |_, rsr| {
                let mut g = GetBuffer::new(&rsr.data);
                assert_eq!(g.get_u32(), 7);
                assert_eq!(g.get_str(), "cross-cluster");
            });
            nx.handle_one();
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}
