//! Cross-crate integration tests live as cargo tests of this package.
