//! Property-based tests over the core invariants (proptest).
//!
//! Worlds spawn real threads, so case counts are kept deliberately small;
//! each case still exercises the full stack end to end.

use madeleine::{ChannelSpec, Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};
use proptest::prelude::*;

/// A randomly-shaped message: block sizes plus mode selectors.
#[derive(Clone, Debug)]
struct MsgShape {
    blocks: Vec<(usize, u8, u8)>, // (len, smode selector, rmode selector)
}

fn smode(sel: u8) -> SendMode {
    match sel % 3 {
        0 => SendMode::Safer,
        1 => SendMode::Later,
        _ => SendMode::Cheaper,
    }
}

fn rmode(sel: u8) -> RecvMode {
    if sel % 2 == 0 {
        RecvMode::Express
    } else {
        RecvMode::Cheaper
    }
}

fn shape_strategy() -> impl Strategy<Value = MsgShape> {
    prop::collection::vec((0usize..20_000, any::<u8>(), any::<u8>()), 1..8)
        .prop_map(|blocks| MsgShape { blocks })
}

fn protocol_strategy() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Sisci),
        Just(Protocol::Bip),
        Just(Protocol::Tcp),
        Just(Protocol::Via),
        Just(Protocol::Sbp),
    ]
}

fn net_for(protocol: Protocol) -> (&'static str, NetKind) {
    match protocol {
        Protocol::Tcp | Protocol::Sbp => ("eth0", NetKind::Ethernet),
        Protocol::Bip => ("myr0", NetKind::Myrinet),
        Protocol::Sisci => ("sci0", NetKind::Sci),
        Protocol::Via => ("san0", NetKind::ViaSan),
    }
}

/// One LATER block per message at most: LATER followed by EXPRESS on a
/// *later* block would let the receiver demand data the sender may not
/// send before commit while the sender still holds earlier LATER blocks —
/// legal but we keep shapes that terminate quickly.
fn sanitize(shape: &MsgShape) -> Vec<(usize, SendMode, RecvMode)> {
    let mut later_seen = false;
    shape
        .blocks
        .iter()
        .map(|&(len, s, r)| {
            let mut sm = smode(s);
            if sm == SendMode::Later {
                if later_seen {
                    sm = SendMode::Cheaper;
                }
                later_seen = true;
            }
            let rm = if later_seen {
                RecvMode::Cheaper
            } else {
                rmode(r)
            };
            (len, sm, rm)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    /// Any symmetric pack/unpack sequence round-trips byte-exact over any
    /// protocol, for every mode combination.
    #[test]
    fn arbitrary_messages_roundtrip(shape in shape_strategy(), protocol in protocol_strategy()) {
        let blocks = sanitize(&shape);
        let (net, kind) = net_for(protocol);
        let mut b = WorldBuilder::new(2);
        b.network(net, kind, &[0, 1]);
        let world = b.build();
        let config = Config::one("ch", net, protocol);
        let blocks2 = blocks.clone();
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            let payloads: Vec<Vec<u8>> = blocks2
                .iter()
                .enumerate()
                .map(|(k, &(len, _, _))| {
                    (0..len).map(|i| (i as u8).wrapping_add(k as u8)).collect()
                })
                .collect();
            if env.id() == 0 {
                let mut msg = ch.begin_packing(1);
                for (payload, &(_, sm, rm)) in payloads.iter().zip(&blocks2) {
                    msg.pack(payload, sm, rm);
                }
                msg.end_packing();
            } else {
                let mut bufs: Vec<Vec<u8>> =
                    payloads.iter().map(|p| vec![0u8; p.len()]).collect();
                let mut msg = ch.begin_unpacking();
                for (buf, &(_, sm, rm)) in bufs.iter_mut().zip(&blocks2) {
                    msg.unpack(buf, sm, rm);
                }
                msg.end_unpacking();
                for (got, want) in bufs.iter().zip(&payloads) {
                    assert_eq!(got, want, "{protocol:?} shape {blocks2:?}");
                }
            }
        });
    }

    /// Multirail channels are transparent: any symmetric pack/unpack
    /// sequence round-trips byte-exact over 1, 2, or 3 rails, for every
    /// mode combination — including blocks large enough to stripe (the
    /// threshold is forced low so the stripe engine actually runs).
    #[test]
    fn multirail_messages_roundtrip(
        shape in shape_strategy(),
        rails in 1usize..=3,
        bip in any::<bool>(),
    ) {
        let blocks = sanitize(&shape);
        let (protocol, net, kind) = if bip {
            (Protocol::Bip, "myr0", NetKind::Myrinet)
        } else {
            (Protocol::Tcp, "eth0", NetKind::Ethernet)
        };
        let mut b = WorldBuilder::new(2);
        b.network_with_rails(net, kind, &[0, 1], rails);
        let world = b.build();
        let config = Config::default().with_channel_spec(
            ChannelSpec::new("ch", net, protocol)
                .with_rails(rails)
                .with_striping(4096, 2048),
        );
        let blocks2 = blocks.clone();
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            let payloads: Vec<Vec<u8>> = blocks2
                .iter()
                .enumerate()
                .map(|(k, &(len, _, _))| {
                    (0..len).map(|i| (i as u8).wrapping_mul(3).wrapping_add(k as u8)).collect()
                })
                .collect();
            if env.id() == 0 {
                let mut msg = ch.begin_packing(1);
                for (payload, &(_, sm, rm)) in payloads.iter().zip(&blocks2) {
                    msg.pack(payload, sm, rm);
                }
                msg.end_packing();
            } else {
                let mut bufs: Vec<Vec<u8>> =
                    payloads.iter().map(|p| vec![0u8; p.len()]).collect();
                let mut msg = ch.begin_unpacking();
                for (buf, &(_, sm, rm)) in bufs.iter_mut().zip(&blocks2) {
                    msg.unpack(buf, sm, rm);
                }
                msg.end_unpacking();
                for (got, want) in bufs.iter().zip(&payloads) {
                    assert_eq!(got, want, "{protocol:?} x{rails} shape {blocks2:?}");
                }
            }
        });
    }

    /// Message boundaries survive arbitrary message trains: k messages of
    /// random sizes arrive intact and in order.
    #[test]
    fn message_trains_stay_framed(
        sizes in prop::collection::vec(0usize..30_000, 1..12),
        protocol in protocol_strategy(),
    ) {
        let (net, kind) = net_for(protocol);
        let mut b = WorldBuilder::new(2);
        b.network(net, kind, &[0, 1]);
        let world = b.build();
        let config = Config::one("ch", net, protocol);
        let sizes2 = sizes.clone();
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let ch = mad.channel("ch");
            for (k, &n) in sizes2.iter().enumerate() {
                let data: Vec<u8> = (0..n).map(|i| (i as u8) ^ (k as u8)).collect();
                if env.id() == 0 {
                    let mut msg = ch.begin_packing(1);
                    msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                } else {
                    let mut got = vec![0u8; n];
                    let mut msg = ch.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, data, "message {k} over {protocol:?}");
                }
            }
        });
    }

    /// Virtual-channel fragmentation reassembles for arbitrary MTUs.
    #[test]
    fn fragmentation_reassembles_for_any_mtu(
        mtu in 512usize..16_384,
        len in 0usize..120_000,
    ) {
        use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
        let mut b = WorldBuilder::new(3);
        b.network("sci0", NetKind::Sci, &[0, 1]);
        b.network("myr0", NetKind::Myrinet, &[1, 2]);
        let world = b.build();
        let config = Config::one("sci", "sci0", Protocol::Sisci)
            .with_channel("myr", "myr0", Protocol::Bip);
        world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let spec = VirtualChannelSpec::new("vc", &["sci", "myr"], mtu);
            let gw = Gateway::spawn(&env, &mad, &config, &spec);
            let vc = VirtualChannel::open(&env, &mad, &config, &spec);
            if env.id() == 0 {
                let vc = vc.expect("endpoint");
                let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
                let mut msg = vc.begin_packing(2);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            } else if env.id() == 2 {
                let vc = vc.expect("endpoint");
                let mut got = vec![0u8; len];
                let mut msg = vc.begin_unpacking();
                msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 253) as u8));
            }
            env.barrier();
            if let Some(gw) = gw {
                gw.stop();
            }
        });
    }
}

// ---------------- substrate-level properties ----------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Walking a random linear chain with `next_leg` always reaches the
    /// destination, never revisits a node, and crosses only gateways.
    #[test]
    fn routes_always_converge(
        hop_sizes in prop::collection::vec(1usize..4, 2..6),
        seed in any::<u64>(),
    ) {
        use mad_gateway::Route;
        // Build a linear chain: hop i shares exactly its last node with
        // hop i+1.
        let mut hops = Vec::new();
        let mut next_node = 0usize;
        for (i, extra) in hop_sizes.iter().enumerate() {
            let start = if i == 0 { next_node } else { next_node - 1 };
            let members: Vec<usize> = (start..start + extra + 1).collect();
            next_node = start + extra + 1;
            hops.push(members);
        }
        let route = Route::new(hops.clone());
        let all = route.all_members();
        let src = all[seed as usize % all.len()];
        let dst = all[(seed / 7) as usize % all.len()];
        if src == dst {
            return Ok(());
        }
        let mut at = src;
        let mut visited = vec![at];
        for _ in 0..all.len() + 2 {
            let (_, next) = route.next_leg(at, dst);
            assert!(!visited.contains(&next), "routing loop at {next}");
            visited.push(next);
            at = next;
            if at == dst {
                break;
            }
            assert!(
                !route.gateway_positions(at).is_empty(),
                "intermediate node {at} must be a gateway"
            );
        }
        assert_eq!(at, dst, "route from {src} to {dst} did not converge");
    }

    /// Fragment headers round-trip for every field value.
    #[test]
    fn frag_headers_roundtrip(
        src in 0usize..256,
        dst in 0usize..256,
        len in 0usize..(1 << 24),
        offset in 0usize..(1 << 24),
    ) {
        use mad_gateway::FragHeader;
        use madeleine::WireVersion;
        let h = FragHeader {
            src,
            dst,
            len,
            offset,
        };
        for v in [WireVersion::Classic, WireVersion::Compact] {
            prop_assert_eq!(FragHeader::decode(v, &h.encode(v)), h);
        }
    }

    /// PerfCurve interpolation stays within the bracketing anchors and is
    /// monotone in size.
    #[test]
    fn perf_curve_is_sane(
        mut anchors in prop::collection::vec((1usize..1_000_000, 1u32..1_000_000), 2..8),
        queries in prop::collection::vec(0usize..2_000_000, 1..16),
    ) {
        use madsim_net::PerfCurve;
        anchors.sort_unstable();
        anchors.dedup_by_key(|a| a.0);
        if anchors.len() < 2 {
            return Ok(());
        }
        // Make times strictly increasing.
        let mut t = 0.0f64;
        let anchors: Vec<(usize, f64)> = anchors
            .into_iter()
            .map(|(x, dt)| {
                t += dt as f64 / 1000.0 + 0.001;
                (x, t)
            })
            .collect();
        let curve = PerfCurve::from_anchors(&anchors);
        let mut prev: Option<(usize, f64)> = None;
        let mut qs = queries.clone();
        qs.sort_unstable();
        for q in qs {
            let y = curve.time_for(q).as_micros_f64();
            if let Some((px, py)) = prev {
                if q >= px {
                    prop_assert!(y >= py - 1e-6, "time not monotone: t({q})={y} < t({px})={py}");
                }
            }
            prev = Some((q, y));
            // Within the anchored domain, the value is bracketed.
            for w in anchors.windows(2) {
                if q >= w[0].0 && q <= w[1].0 {
                    prop_assert!(y >= w[0].1 - 1e-6 && y <= w[1].1 + 1e-6);
                }
            }
        }
    }

    /// The PCI bus timeline serializes: no transfer finishes earlier than
    /// its asked start plus its base duration, and DMA transfers occupy
    /// pairwise-disjoint busy spans on the bus. Completion times are *not*
    /// required to be non-decreasing in booking order: the timeline
    /// backfills gaps, so a later booking asking for an earlier virtual
    /// instant may legitimately finish before an earlier booking.
    #[test]
    fn pci_bus_serializes(
        ops in prop::collection::vec((0u64..10_000, 1u64..1_000, any::<bool>(), any::<bool>()), 1..32),
    ) {
        use madsim_net::{BusDir, BusKind, PciBus, PciConfig};
        use madsim_net::time::{VDuration, VTime};
        let bus = PciBus::new(PciConfig::default());
        // DMA durations are never inflated, so each DMA's busy span is
        // exactly [end - dur, end]; PIO spans stretch under contention and
        // are not reconstructible from the return value alone.
        let mut dma_spans: Vec<(VTime, VTime)> = Vec::new();
        for (start_us, dur_us, pio, inbound) in ops {
            let kind = if pio { BusKind::Pio } else { BusKind::Dma };
            let dir = if inbound { BusDir::Inbound } else { BusDir::Outbound };
            let start = VTime::from_nanos(start_us * 1_000);
            let dur = VDuration::from_micros(dur_us);
            let end = bus.transfer(kind, dir, start, dur);
            prop_assert!(end >= start + dur, "transfer finished early");
            if !pio {
                dma_spans.push((end.saturating_sub(dur), end));
            }
        }
        dma_spans.sort();
        for w in dma_spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "DMA transfers overlap on the bus");
        }
    }

    /// Nexus marshaling round-trips arbitrary value sequences.
    #[test]
    fn nexus_marshaling_roundtrips(
        items in prop::collection::vec(
            prop_oneof![
                (any::<u32>()).prop_map(Item::U32),
                (any::<f64>()).prop_map(Item::F64),
                prop::collection::vec(any::<u8>(), 0..200).prop_map(Item::Bytes),
            ],
            0..16,
        )
    ) {
        use mad_nexus::{GetBuffer, PutBuffer};
        let mut put = PutBuffer::new();
        for it in &items {
            match it {
                Item::U32(v) => {
                    put.put_u32(*v);
                }
                Item::F64(v) => {
                    put.put_f64(*v);
                }
                Item::Bytes(v) => {
                    put.put_bytes(v);
                }
            }
        }
        let mut get = GetBuffer::new(put.as_slice());
        for it in &items {
            match it {
                Item::U32(v) => prop_assert_eq!(get.get_u32(), *v),
                Item::F64(v) => {
                    let got = get.get_f64();
                    prop_assert!(got == *v || (got.is_nan() && v.is_nan()));
                }
                Item::Bytes(v) => prop_assert_eq!(get.get_bytes(), v.as_slice()),
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Item {
    U32(u32),
    F64(f64),
    Bytes(Vec<u8>),
}
