//! The nonblocking op path end to end: posted message state machines,
//! completion-queue semantics, cancellation, and failure under quarantine.
//!
//! Every test runs over BIP (Myrinet), whose credit-gated short TM and
//! rendezvous long TM exercise all three parked op states.

use bytes::Bytes;
use mad_mpi::Mpi;
use madeleine::{Config, MadError, Madeleine, OpState, Protocol, RecvMode, SendMode};
use madsim_net::{NetKind, WorldBuilder};
use std::sync::Arc;

fn bip_world(nodes: usize) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(nodes);
    let members: Vec<usize> = (0..nodes).collect();
    b.network("myr0", NetKind::Myrinet, &members);
    (b.build(), Config::one("net", "myr0", Protocol::Bip))
}

/// Interleaved sends to two peers: a short message posted *after* a
/// rendezvous retires *before* it, so the completion queue orders by
/// completion, not posting — and the blocked rendezvous drains later
/// through a progress-driven queue pop.
#[test]
fn completion_queue_orders_by_completion_not_posting() {
    const LEN: usize = 64 * 1024;
    let (world, config) = bip_world(3);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("net");
        if env.id() == 0 {
            let long: Vec<u8> = (0..LEN).map(|i| (i % 255) as u8).collect();
            let a = ch.post_message(
                1,
                vec![(
                    Bytes::copy_from_slice(&long),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            let b = ch.post_message(
                2,
                vec![(
                    Bytes::from_static(b"tiny"),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            // Node 1 is parked at the barrier, so its CTS cannot have
            // arrived: the long op must be parked, the short one retired.
            assert_eq!(ch.engine().state(a), Some(OpState::RendezvousWait));
            let first = ch
                .completions()
                .try_pop()
                .expect("short op retires at post time");
            assert_eq!(first.id, b, "short message must complete first");
            assert_eq!(first.peer, 2);
            assert!(first.result.is_ok());
            assert!(ch.completions().is_empty());
            env.barrier();
            // Drain the rendezvous through the queue, ticking the engine.
            let second = loop {
                ch.progress();
                if let Some(c) = ch.completions().try_pop() {
                    break c;
                }
                std::thread::yield_now();
            };
            assert_eq!(second.id, a);
            assert_eq!(second.peer, 1);
            assert!(second.result.is_ok());
            assert_eq!(ch.engine().in_flight(), 0);
        } else {
            env.barrier();
            let mut buf = vec![0u8; if env.id() == 1 { LEN } else { 4 }];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            if env.id() == 1 {
                assert!(buf.iter().enumerate().all(|(i, &x)| x == (i % 255) as u8));
            } else {
                assert_eq!(&buf, b"tiny");
            }
        }
    });
}

/// `MPI_Isend` of a rendezvous-sized message genuinely returns before the
/// transfer can complete; `test` reports false across the rendezvous
/// boundary and flips to true once the receiver posts.
#[test]
fn mpi_isend_test_false_then_true_across_rendezvous() {
    const LEN: usize = 64 * 1024;
    let (world, config) = bip_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = Arc::clone(mad.channel("net"));
        let mpi = Mpi::init(&mad, "net");
        if mpi.rank() == 0 {
            let data: Vec<u8> = (0..LEN).map(|i| (i * 7 % 251) as u8).collect();
            let mut req = mpi.isend(1, 42, &data);
            // ≥ 1 kB over BIP needs the receiver's CTS, and the receiver
            // is parked at the barrier: isend must have returned with the
            // transfer still in flight.
            assert_eq!(ch.engine().in_flight(), 1);
            assert!(
                mpi.test(&mut req).is_none(),
                "rendezvous send completed with no receiver posted"
            );
            env.barrier();
            let st = loop {
                if let Some(st) = mpi.test(&mut req) {
                    break st;
                }
                std::thread::yield_now();
            };
            assert_eq!((st.source, st.tag, st.len), (1, 42, LEN));
            assert_eq!(ch.engine().in_flight(), 0, "transfer finished inside test");
        } else {
            env.barrier();
            let mut buf = vec![0u8; LEN];
            let st = mpi.recv(Some(0), Some(42), &mut buf);
            assert_eq!(st.len, LEN);
            assert!(buf
                .iter()
                .enumerate()
                .all(|(i, &x)| x == (i * 7 % 251) as u8));
        }
        mpi.barrier();
    });
}

/// An op queued behind a parked rendezvous has shipped nothing, so it can
/// be cancelled — and because the header sequence number is claimed at
/// ship time, the cancel leaves no gap in the peer's sequence space.
#[test]
fn cancel_of_unstarted_op_leaves_stream_intact() {
    const LEN: usize = 32 * 1024;
    let (world, config) = bip_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("net");
        if env.id() == 0 {
            let a = ch.post_message(
                1,
                vec![(
                    Bytes::from(vec![9u8; LEN]),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            let b = ch.post_message(
                1,
                vec![(
                    Bytes::from_static(b"never"),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            assert_eq!(ch.engine().state(b), Some(OpState::Posted));
            assert!(ch.cancel_op(b), "unstarted op must be cancellable");
            assert_eq!(ch.engine().state(b), None, "cancelled op is forgotten");
            assert!(
                !ch.cancel_op(a),
                "an op whose header shipped must be uncancellable"
            );
            env.barrier();
            ch.wait_op(a).expect("rendezvous completes once peer posts");
            // No sequence hole: a blocking message to the same peer flows.
            let mut msg = ch.begin_packing(1);
            msg.pack(b"after", SendMode::Cheaper, RecvMode::Express);
            msg.end_packing();
        } else {
            env.barrier();
            let mut buf = vec![0u8; LEN];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert!(buf.iter().all(|&x| x == 9));
            let mut tail = [0u8; 5];
            let mut msg = ch.begin_unpacking();
            msg.unpack_express(&mut tail, SendMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(&tail, b"after");
        }
    });
}

/// A posted small message on a batched channel parks in `Batched`: its
/// packets are staged in the open coalescing frame but nothing has hit the
/// wire. Cancelling it must pull those packets back out of the batch — the
/// peer sees only later traffic, with no sequence gap, because both the
/// envelope and the message sequence numbers are claimed at flush time.
#[test]
fn cancel_while_batched_withholds_the_envelope() {
    use madeleine::ChannelSpec;

    let mut b = WorldBuilder::new(2);
    b.network("eth0", NetKind::Ethernet, &[0, 1]);
    let world = b.build();
    let config = Config::default().with_channel_spec(
        ChannelSpec::new("net", "eth0", Protocol::Tcp).with_batching(16, 4096, 20.0),
    );
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("net");
        if env.id() == 0 {
            let doomed = ch.post_message(
                1,
                vec![(
                    Bytes::from_static(b"never"),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            assert_eq!(ch.engine().state(doomed), Some(OpState::Batched));
            assert!(
                ch.cancel_op(doomed),
                "a staged-but-unflushed op must be cancellable"
            );
            assert_eq!(ch.engine().state(doomed), None, "cancelled op is forgotten");
            let keep = ch.post_message(
                1,
                vec![(
                    Bytes::from_static(b"lives"),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            ch.flush().expect("explicit flush ships the survivor");
            ch.wait_op(keep).expect("surviving op completes");
            let s = ch.stats();
            assert!(s.batches() >= 1, "flush of a non-empty batch must count");
            assert_eq!(
                s.batched_packets(),
                2,
                "only the survivor's header + data may ship"
            );
        } else {
            let mut buf = [0u8; 5];
            let mut msg = ch.begin_unpacking();
            msg.unpack(&mut buf, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(&buf, b"lives", "cancelled message leaked to the peer");
        }
        env.barrier();
    });
}

/// Dropping a posted-but-unmatched nonblocking receive must neither hang
/// nor panic, and must not disturb later traffic.
#[test]
fn dropping_unmatched_irecv_is_harmless() {
    let (world, config) = bip_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let mpi = Mpi::init(&mad, "net");
        if mpi.rank() == 0 {
            let mut buf = [0u8; 16];
            let mut req = mpi.irecv(Some(1), Some(99), &mut buf);
            assert!(mpi.test(&mut req).is_none(), "nobody sent tag 99");
            let _ = req;
            mpi.send(1, 7, b"ping");
            let mut back = [0u8; 4];
            let st = mpi.recv(Some(1), Some(7), &mut back);
            assert_eq!((st.len, &back), (4, b"pong"));
        } else {
            let mut buf = [0u8; 4];
            mpi.recv(Some(0), Some(7), &mut buf);
            assert_eq!(&buf, b"ping");
            mpi.send(0, 7, b"pong");
        }
    });
}

/// Chaos: every rail quarantined mid-op. Both the parked rendezvous and
/// the op queued behind it must fail with `ChannelDown` — promptly, not by
/// hanging until a fault timeout.
#[test]
fn quarantined_rails_fail_in_flight_ops_with_channel_down() {
    const LEN: usize = 16 * 1024;
    let (world, config) = bip_world(2);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let ch = mad.channel("net");
        if env.id() == 0 {
            let a = ch.post_message(
                1,
                vec![(
                    Bytes::from(vec![1u8; LEN]),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            let b = ch.post_message(
                1,
                vec![(
                    Bytes::from_static(b"queued"),
                    SendMode::Cheaper,
                    RecvMode::Cheaper,
                )],
            );
            assert_eq!(ch.engine().state(a), Some(OpState::RendezvousWait));
            // The channel's only rail dies under the in-flight ops.
            ch.quarantine_rail(0);
            let ea = ch.wait_op(a).expect_err("op on a dead rail must fail");
            assert!(matches!(ea, MadError::ChannelDown), "got {ea:?}");
            let eb = ch.wait_op(b).expect_err("queued op must fail too");
            assert!(matches!(eb, MadError::ChannelDown), "got {eb:?}");
            assert_eq!(ch.engine().in_flight(), 0);
        }
        env.barrier();
    });
}
