//! Chaos tests: the robustness layer under seeded fault injection.
//!
//! Every test here runs the regular Madeleine stack over a fabric armed
//! with a [`FaultPlan`]; the plan's seeded, counter-indexed decisions make
//! each failure schedule reproducible, so these are ordinary deterministic
//! tests, not flaky stress tests.

use madeleine::trace::TraceEvent;
use madeleine::{Config, Madeleine, Protocol, RecvMode, SendMode};
use madsim_net::{FaultPlan, NetKind, WorldBuilder};

/// Two nodes on one Ethernet segment, optionally fault-armed.
fn eth_pair(plan: Option<FaultPlan>) -> (madsim_net::World, Config) {
    let mut b = WorldBuilder::new(2);
    b.network("eth0", NetKind::Ethernet, &[0, 1]);
    let b = match plan {
        Some(p) => b.fault_plan(p),
        None => b,
    };
    (b.build(), Config::one("net", "eth0", Protocol::Tcp))
}

/// `rounds` of request/echo between nodes 0 and 1; returns the node's
/// retransmission count.
fn ping_pong(world: &madsim_net::World, config: Config, rounds: usize, len: usize) -> u64 {
    let counts = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let chan = mad.channel("net");
        let ping: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        for round in 0..rounds {
            if env.id() == 0 {
                let mut msg = chan.begin_packing(1);
                msg.pack(&ping, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
                let mut back = vec![0u8; len];
                let mut msg = chan.begin_unpacking();
                msg.unpack(&mut back, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(back, ping, "echo corrupted in round {round}");
            } else {
                let mut got = vec![0u8; len];
                let mut msg = chan.begin_unpacking();
                msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                assert_eq!(got, ping, "ping corrupted in round {round}");
                let mut msg = chan.begin_packing(0);
                msg.pack(&got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            }
        }
        chan.stats().retransmits()
    });
    counts.iter().sum()
}

/// The same seed must produce the byte-identical fault schedule in two
/// independently built worlds — the property that makes every other test
/// in this file reproducible.
#[test]
fn same_seed_gives_identical_fault_logs() {
    let plan = FaultPlan::new(42).drop_rate(0.05).duplicate_rate(0.02);
    let mut logs = Vec::new();
    for _ in 0..2 {
        let (world, config) = eth_pair(Some(plan.clone()));
        ping_pong(&world, config, 100, 512);
        logs.push(world.faults().expect("plan installed").log());
    }
    assert!(!logs[0].is_empty(), "5% loss over 100 rounds hit nothing");
    assert_eq!(logs[0], logs[1], "fault schedule depends on the run");
}

/// TCP ping-pong completes under 1% frame loss: every drop is repaired by
/// the ack/retransmit machinery and counted.
#[test]
fn tcp_ping_pong_survives_loss() {
    let (world, config) = eth_pair(Some(FaultPlan::new(7).drop_rate(0.01)));
    let retransmits = ping_pong(&world, config, 400, 256);
    let faults = world.faults().expect("plan installed");
    assert!(
        faults.drops() > 0,
        "1% loss over 400 rounds dropped nothing"
    );
    assert!(
        retransmits >= faults.drops(),
        "{} drops but only {retransmits} retransmissions recorded",
        faults.drops()
    );
}

/// A 1 MiB CHEAPER/CHEAPER transfer arrives intact under 1% frame loss.
/// One transfer rolls only ~17 loss decisions (64 KiB ARQ segments), so
/// the exchange repeats with a fresh payload until the seeded schedule
/// has actually dropped something.
#[test]
fn bulk_transfer_survives_loss() {
    const LEN: usize = 1 << 20;
    const MAX_ATTEMPTS: usize = 64;
    let (world, config) = eth_pair(Some(FaultPlan::new(11).drop_rate(0.01)));
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let chan = mad.channel("net");
        for attempt in 0..MAX_ATTEMPTS {
            let fill = |i: usize| (i * 31 + 7 + attempt) as u8;
            if env.id() == 0 {
                let data: Vec<u8> = (0..LEN).map(fill).collect();
                let mut msg = chan.begin_packing(1);
                msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_packing();
            } else {
                let mut got = vec![0u8; LEN];
                let mut msg = chan.begin_unpacking();
                msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                msg.end_unpacking();
                let bad = got.iter().enumerate().find(|&(i, &b)| b != fill(i));
                assert_eq!(
                    bad, None,
                    "corruption after loss recovery, attempt {attempt}"
                );
            }
            // The transfer is fully acknowledged before either side gets
            // here, so the drop total is stable across the barrier and
            // both nodes take the same branch.
            env.barrier();
            if env.faults().expect("plan installed").drops() > 0 {
                break;
            }
        }
    });
    assert!(
        world.faults().expect("plan installed").drops() > 0,
        "1% loss dropped nothing across 64 MiB of transfers"
    );
}

/// A virtual channel with an alternate route survives its primary gateway
/// crashing between messages: the send fails fast, the block restarts on
/// the alternate, and the failover is counted and traced.
#[test]
fn virtual_channel_fails_over_after_gateway_crash() {
    use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};

    // Endpoints 0 and 1; primary route through gateway 2, alternate
    // through gateway 3, each hop its own Ethernet segment.
    let mut b = WorldBuilder::new(4);
    b.network("ethA", NetKind::Ethernet, &[0, 2]);
    b.network("ethB", NetKind::Ethernet, &[2, 1]);
    b.network("ethC", NetKind::Ethernet, &[0, 3]);
    b.network("ethD", NetKind::Ethernet, &[3, 1]);
    let world = b.fault_plan(FaultPlan::new(1)).build();
    let config = Config::one("chA", "ethA", Protocol::Tcp)
        .with_channel("chB", "ethB", Protocol::Tcp)
        .with_channel("chC", "ethC", Protocol::Tcp)
        .with_channel("chD", "ethD", Protocol::Tcp);
    const LEN: usize = 20_000;
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let spec =
            VirtualChannelSpec::new("vc", &["chA", "chB"], 4096).with_alternate(&["chC", "chD"]);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if let Some(vc) = vc.as_ref() {
            vc.enable_trace();
        }
        let payload: Vec<u8> = (0..LEN).map(|i| (i % 247) as u8).collect();

        // Message 1 crosses the healthy primary route.
        if env.id() == 0 {
            let vc = vc.as_ref().expect("endpoint");
            let mut msg = vc.begin_packing(1);
            msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else if env.id() == 1 {
            let vc = vc.as_ref().expect("endpoint");
            let mut got = vec![0u8; LEN];
            let mut msg = vc.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, payload, "message 1 corrupted on the primary");
        }
        env.barrier();

        // The primary gateway dies.
        if env.id() == 0 {
            env.faults().expect("plan installed").crash(2);
        }
        env.barrier();

        // Message 2 fails over to the alternate route transparently.
        if env.id() == 0 {
            let vc = vc.as_ref().expect("endpoint");
            let mut msg = vc.begin_packing(1);
            msg.pack(&payload, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            assert!(
                vc.stats().failovers() >= 1,
                "send after the crash did not fail over"
            );
            let events: Vec<TraceEvent> =
                vc.tracer().events().into_iter().map(|t| t.event).collect();
            assert!(
                events.contains(&TraceEvent::RouteDown { route: 0 }),
                "primary route was never marked down: {events:?}"
            );
            assert!(
                events.contains(&TraceEvent::Failover { dst: 1, route: 1 }),
                "failover to the alternate was not traced: {events:?}"
            );
        } else if env.id() == 1 {
            let vc = vc.as_ref().expect("endpoint");
            let mut got = vec![0u8; LEN];
            let mut msg = vc.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            assert_eq!(got, payload, "message 2 corrupted on the alternate");
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
}

/// A striped transfer over a 2-rail channel survives one rail partitioning
/// mid-message: the sender quarantines the dead rail, re-stripes the lost
/// chunks over the survivor, and the block arrives byte-exact. The cut is
/// counter-armed on rail 1 only, so the failure lands *inside* the striped
/// block deterministically.
#[test]
fn striped_transfer_survives_rail_partition() {
    use madeleine::ChannelSpec;

    const LEN: usize = 192 * 1024;
    let mut b = WorldBuilder::new(2);
    let myr = b.network_with_rails("myr0", NetKind::Myrinet, &[0, 1], 2);
    let world = b
        .fault_plan(FaultPlan::new(3).partition_rail_after(myr.0, 1, 0, 1, 5))
        .build();
    let config = Config::default().with_channel_spec(
        ChannelSpec::new("ch", "myr0", Protocol::Bip)
            .with_rails(2)
            .with_striping(64 * 1024, 32 * 1024),
    );
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let chan = mad.channel("ch");
        chan.enable_trace();
        let fill = |i: usize| (i % 249) as u8;
        if env.id() == 0 {
            let data: Vec<u8> = (0..LEN).map(fill).collect();
            let mut msg = chan.begin_packing(1);
            msg.pack(&data, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
            assert!(
                chan.stats().failovers() >= 1,
                "rail 1 was cut but never quarantined"
            );
            let events: Vec<TraceEvent> = chan
                .tracer()
                .events()
                .into_iter()
                .map(|t| t.event)
                .collect();
            assert!(
                events.contains(&TraceEvent::RailDown { rail: 1 }),
                "rail quarantine was not traced: {events:?}"
            );
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Stripe { .. })),
                "transfer never striped: {events:?}"
            );
        } else {
            let mut got = vec![0u8; LEN];
            let mut msg = chan.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
            let bad = got.iter().enumerate().find(|&(i, &b)| b != fill(i));
            assert_eq!(bad, None, "corruption after rail failover");
        }
        env.barrier();
    });
    assert!(
        world.faults().expect("plan installed").drops() > 0,
        "the rail cut never dropped a frame"
    );
}

/// The seeded drop/dup schedule over a **batched** channel: multi-envelope
/// frames are retransmitted as a unit by the same ARQ machinery, every
/// round's data arrives intact and in order, and the fault log stays
/// byte-identical across independently built worlds — batching must not
/// perturb the deterministic schedule.
#[test]
fn batched_channel_survives_seeded_loss_and_dup() {
    use madeleine::ChannelSpec;

    const ROUNDS: usize = 100;
    const LEN: usize = 512;
    let plan = FaultPlan::new(42).drop_rate(0.05).duplicate_rate(0.02);
    let mut logs = Vec::new();
    for _ in 0..2 {
        let mut b = WorldBuilder::new(2);
        b.network("eth0", NetKind::Ethernet, &[0, 1]);
        let world = b.fault_plan(plan.clone()).build();
        let config = Config::default().with_channel_spec(
            ChannelSpec::new("net", "eth0", Protocol::Tcp).with_batching(16, 4096, 20.0),
        );
        let counters = world.run(move |env| {
            let mad = Madeleine::init(&env, &config);
            let chan = mad.channel("net");
            let ping: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
            for round in 0..ROUNDS {
                if env.id() == 0 {
                    let mut msg = chan.begin_packing(1);
                    msg.pack(&ping, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                    let mut back = vec![0u8; LEN];
                    let mut msg = chan.begin_unpacking();
                    msg.unpack(&mut back, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(back, ping, "echo corrupted in round {round}");
                } else {
                    let mut got = vec![0u8; LEN];
                    let mut msg = chan.begin_unpacking();
                    msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_unpacking();
                    assert_eq!(got, ping, "ping corrupted in round {round}");
                    let mut msg = chan.begin_packing(0);
                    msg.pack(&got, SendMode::Cheaper, RecvMode::Cheaper);
                    msg.end_packing();
                }
            }
            (chan.stats().batches(), chan.stats().retransmits())
        });
        let batches: u64 = counters.iter().map(|c| c.0).sum();
        assert!(
            batches >= ROUNDS as u64,
            "a batched ping-pong of {ROUNDS} rounds flushed only {batches} batch frames"
        );
        logs.push(world.faults().expect("plan installed").log());
    }
    assert!(
        !logs[0].is_empty(),
        "5% loss + 2% dup over {ROUNDS} rounds hit nothing"
    );
    assert_eq!(
        logs[0], logs[1],
        "fault schedule over a batched channel depends on the run"
    );
}

/// With no fault plan installed nothing is armed: the recovery machinery
/// must stay entirely out of the fast path and every fault counter must
/// read zero.
#[test]
fn zero_fault_runs_count_nothing() {
    let (world, config) = eth_pair(None);
    assert!(world.faults().is_none());
    let counters = world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let chan = mad.channel("net");
        if env.id() == 0 {
            let mut msg = chan.begin_packing(1);
            msg.pack(&[9u8; 4096], SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_packing();
        } else {
            let mut got = [0u8; 4096];
            let mut msg = chan.begin_unpacking();
            msg.unpack(&mut got, SendMode::Cheaper, RecvMode::Cheaper);
            msg.end_unpacking();
        }
        let s = chan.stats();
        (
            s.retransmits(),
            s.link_timeouts(),
            s.failovers(),
            s.frags_discarded(),
        )
    });
    for (node, c) in counters.iter().enumerate() {
        assert_eq!(
            *c,
            (0, 0, 0, 0),
            "fault counters moved on node {node} with no plan installed"
        );
    }
}

/// Hierarchical collectives on a two-cluster world under seeded loss and
/// duplication: the topology-aware schedules must deliver bit-identical
/// results to their flat baselines, with every drop repaired below them.
/// The armed fault plan also forces the classic wire codec (compact is
/// negotiated only on fault-free worlds), so this doubles as the
/// end-to-end check of the version-negotiation rule.
#[test]
fn hierarchical_collectives_match_flat_under_seeded_loss_and_dup() {
    use mad_gateway::{Gateway, VirtualChannel, VirtualChannelSpec};
    use mad_mpi::{Mpi, ReduceOp, Topology};
    use madeleine::WireVersion;
    use std::sync::Arc;

    // Two Ethernet clusters ({0,1,2} and {4,5,6}) joined by gateway 3;
    // TCP on both hops so the ARQ machinery repairs the seeded faults.
    let mut b = WorldBuilder::new(7);
    b.network("eth0", NetKind::Ethernet, &[0, 1, 2, 3]);
    b.network("eth1", NetKind::Ethernet, &[3, 4, 5, 6]);
    let plan = FaultPlan::new(29).drop_rate(0.02).duplicate_rate(0.01);
    let world = b.fault_plan(plan).build();
    let config =
        Config::one("left", "eth0", Protocol::Tcp).with_channel("right", "eth1", Protocol::Tcp);
    let spec = VirtualChannelSpec::new("vc", &["left", "right"], 8192);
    world.run(move |env| {
        let mad = Madeleine::init(&env, &config);
        let gw = Gateway::spawn(&env, &mad, &config, &spec);
        let vc = VirtualChannel::open(&env, &mad, &config, &spec);
        if let Some(vc) = vc {
            assert_eq!(
                vc.channel().wire(),
                WireVersion::Classic,
                "an armed fault plan must force the classic codec"
            );
            let nodes: Vec<madsim_net::NodeId> = vec![0, 1, 2, 4, 5, 6];
            let mpi = Mpi::init_over(Arc::clone(vc.channel()), Some(&nodes));
            let topo = Topology::split_at(6, 3);
            let me = mpi.rank();
            // Broadcast, large enough to fragment at the gateway and to
            // trip the hierarchical chunk pipeline.
            let pattern: Vec<u8> = (0..80_000).map(|i| (i * 7 % 251) as u8).collect();
            let mut flat = vec![0u8; pattern.len()];
            let mut hier = vec![0u8; pattern.len()];
            if me == 2 {
                flat.copy_from_slice(&pattern);
                hier.copy_from_slice(&pattern);
            }
            mpi.bcast(2, &mut flat);
            mpi.bcast_hier(&topo, 2, &mut hier);
            assert_eq!(flat, pattern, "flat bcast corrupted under faults");
            assert_eq!(hier, flat, "hierarchical bcast diverged from flat");
            // Allreduce over integer-valued f64: both reduction orders
            // are exact, so the results must agree bit for bit.
            let vals: Vec<f64> = (0..2048).map(|i| ((me * 37 + i) % 10_000) as f64).collect();
            let f = mpi.allreduce(ReduceOp::Sum, &vals);
            let h = mpi.allreduce_hier(&topo, ReduceOp::Sum, &vals);
            let fb: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
            let hb: Vec<u64> = h.iter().map(|x| x.to_bits()).collect();
            assert_eq!(hb, fb, "hierarchical allreduce not bit-identical to flat");
            let fm = mpi.allreduce(ReduceOp::Max, &vals);
            let hm = mpi.allreduce_hier(&topo, ReduceOp::Max, &vals);
            assert_eq!(hm, fm, "hierarchical Max allreduce diverged");
        }
        env.barrier();
        if let Some(gw) = gw {
            gw.stop();
        }
    });
    let faults = world.faults().expect("plan installed");
    assert!(
        faults.drops() > 0,
        "the seeded schedule never dropped a frame — nothing was exercised"
    );
}
